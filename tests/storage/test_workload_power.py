"""Workload shapes (Fig 5/13) and the power/cost model (Fig 11, §5.6.1)."""

import pytest

from repro.storage.power import (
    BACKFILL_DYNAMIC_KW,
    FLEET_POWER_KW,
    PowerModel,
    power_timeseries,
)
from repro.storage.workload import (
    RolloutModel,
    decode_rate,
    diurnal_multiplier,
    encode_rate,
    is_weekend,
    weekly_series,
)


class TestDiurnal:
    def test_peak_in_the_evening(self):
        assert diurnal_multiplier(17 * 3600.0) > diurnal_multiplier(5 * 3600.0)

    def test_multiplier_positive(self):
        assert all(diurnal_multiplier(h * 3600.0) > 0 for h in range(24))

    def test_day_zero_is_monday(self):
        assert not is_weekend(0.0)
        assert is_weekend(5 * 86400.0)


class TestWeeklyPattern:
    @pytest.fixture(scope="class")
    def series(self):
        return weekly_series(base_encode_per_second=5.0, seed=1)

    def test_one_week_of_hours(self, series):
        assert len(series.hours) == 168

    def test_weekday_decode_ratio_higher(self, series):
        """Figure 5: ratio ≈1.5 on weekdays, approaches 1.0 on weekends."""
        ratios = series.daily_ratio()
        weekday = sum(ratios[:5]) / 5
        weekend = sum(ratios[5:]) / 2
        assert weekday > weekend
        assert weekday == pytest.approx(1.5, abs=0.15)
        assert weekend == pytest.approx(1.0, abs=0.15)

    def test_encodes_flat_across_week(self, series):
        """Uploads are similar on weekdays and weekends."""
        weekday = sum(series.encodes[:120]) / 5
        weekend = sum(series.encodes[120:]) / 2
        assert weekday == pytest.approx(weekend, rel=0.1)

    def test_normalised_series_bottom_at_one(self, series):
        enc, dec = series.normalised()
        assert min(enc) == pytest.approx(1.0)
        assert max(dec) > 2.0  # the paper's axis runs 1.0 → 4.5

    def test_expectation_mode_deterministic(self):
        a = weekly_series(sampled=False)
        b = weekly_series(sampled=False)
        assert a.encodes == b.encodes


class TestRollout:
    def test_ratio_starts_near_zero(self):
        model = RolloutModel()
        day0 = model.lepton_decode_fraction(0.5)
        assert day0 < 0.05

    def test_ratio_ramps_up(self):
        """Figure 13: the decode:encode ratio climbs over months."""
        model = RolloutModel()
        series = model.ratio_series(days=90, seed=2)
        first_month = sum(r for _, r in series[:14]) / 14
        third_month = sum(r for _, r in series[-14:]) / 14
        assert third_month > 2 * first_month

    def test_ratio_eventually_exceeds_one(self):
        model = RolloutModel()
        series = model.ratio_series(days=120, seed=3)
        assert max(r for _, r in series) > 1.0

    def test_fraction_bounded(self):
        model = RolloutModel()
        for day in (0, 10, 100, 10_000):
            assert 0.0 <= model.lepton_decode_fraction(day) <= 1.0


class TestPowerModel:
    def test_full_fleet_matches_paper_power(self):
        model = PowerModel()
        assert model.chassis_power_kw(1.0) == pytest.approx(FLEET_POWER_KW)

    def test_outage_drop_matches_paper(self):
        """Figure 11: backfill off drops power by 121 kW."""
        model = PowerModel()
        drop = model.chassis_power_kw(1.0) - model.chassis_power_kw(0.0)
        assert drop == pytest.approx(BACKFILL_DYNAMIC_KW)

    def test_conversions_per_kwh_near_72300(self):
        assert PowerModel().conversions_per_kwh() == pytest.approx(72_300, rel=0.01)

    def test_gib_saved_per_kwh_near_24(self):
        assert PowerModel().gib_saved_per_kwh() == pytest.approx(24.0, rel=0.05)

    def test_breakeven_price_near_58_cents(self):
        """§5.6.1: worthwhile versus a depowered drive below $0.58/kWh."""
        assert PowerModel().breakeven_kwh_price() == pytest.approx(0.58, abs=0.03)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            PowerModel().chassis_power_kw(1.5)


class TestPowerTimeseries:
    def test_step_down_during_outage(self):
        series = power_timeseries(hours=30, outage_start=9, outage_end=15, seed=1)
        during = [p for t, p, _ in series if 10 <= t < 14]
        outside = [p for t, p, _ in series if t < 8 or t > 16]
        assert max(during) < min(outside)
        drop = sum(outside) / len(outside) - sum(during) / len(during)
        assert drop == pytest.approx(BACKFILL_DYNAMIC_KW, rel=0.05)

    def test_conversions_stop_during_outage(self):
        series = power_timeseries(hours=30, outage_start=9, outage_end=15, seed=1)
        during = [r for t, _, r in series if 10 <= t < 14]
        assert max(during) == 0.0
