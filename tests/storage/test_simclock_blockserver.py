"""Event kernel and processor-sharing server model."""

import pytest

from repro.storage.blockserver import (
    BlockServer,
    Job,
    decode_work,
    encode_work,
)
from repro.storage.simclock import SimClock


class TestSimClock:
    def test_events_fire_in_time_order(self):
        clock = SimClock()
        fired = []
        clock.at(5.0, lambda: fired.append("b"))
        clock.at(1.0, lambda: fired.append("a"))
        clock.at(9.0, lambda: fired.append("c"))
        clock.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        clock = SimClock()
        fired = []
        clock.at(1.0, lambda: fired.append(1))
        clock.at(1.0, lambda: fired.append(2))
        clock.run_all()
        assert fired == [1, 2]

    def test_run_until_stops(self):
        clock = SimClock()
        fired = []
        clock.at(1.0, lambda: fired.append(1))
        clock.at(5.0, lambda: fired.append(5))
        clock.run_until(3.0)
        assert fired == [1]
        assert clock.now == 3.0
        assert clock.pending == 1

    def test_events_can_schedule_events(self):
        clock = SimClock()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                clock.after(1.0, lambda: chain(n + 1))

        clock.after(0.0, lambda: chain(0))
        clock.run_all()
        assert fired == [0, 1, 2, 3]

    def test_scheduling_in_the_past_rejected(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ValueError):
            clock.at(5.0, lambda: None)
        with pytest.raises(ValueError):
            clock.after(-1.0, lambda: None)


class TestProcessorSharing:
    def _run_jobs(self, jobs, cores=16):
        clock = SimClock()
        server = BlockServer(clock, 0, cores=cores)
        done = []
        for delay, job in jobs:
            job.on_complete = done.append
            clock.at(delay, lambda j=job: server.submit(j))
        clock.run_all()
        return done

    def test_single_job_runs_at_thread_speed(self):
        job = Job("lepton_encode", work=8.0, threads=8, arrival=0.0)
        done = self._run_jobs([(0.0, job)])
        assert done[0].finish_time == pytest.approx(1.0)

    def test_undersubscribed_jobs_do_not_interfere(self):
        a = Job("lepton_encode", 8.0, 8, 0.0)
        b = Job("lepton_encode", 8.0, 8, 0.0)
        done = self._run_jobs([(0.0, a), (0.0, b)])
        assert all(j.finish_time == pytest.approx(1.0) for j in done)

    def test_oversubscription_slows_everyone(self):
        """Three 8-thread conversions on 16 cores: each gets 2/3 speed —
        the §5.5 hotspot mechanism."""
        jobs = [Job("lepton_encode", 8.0, 8, 0.0) for _ in range(3)]
        done = self._run_jobs([(0.0, j) for j in jobs])
        assert all(j.finish_time == pytest.approx(1.5) for j in done)

    def test_later_arrival_extends_earlier_job(self):
        a = Job("lepton_encode", 32.0, 16, 0.0)
        b = Job("lepton_encode", 8.0, 16, 1.0)
        done = self._run_jobs([(0.0, a), (1.0, b)])
        by_id = {j.job_id: j for j in done}
        # a alone until t=1 (16 units done); then both share 8 cores each.
        # b finishes at t=2; a's last 8 units then run at full speed.
        assert by_id[b.job_id].finish_time == pytest.approx(2.0)
        assert by_id[a.job_id].finish_time == pytest.approx(2.5)

    def test_lepton_count_excludes_other_jobs(self):
        clock = SimClock()
        server = BlockServer(clock, 0)
        server.submit(Job("lepton_encode", 100.0, 8, 0.0))
        server.submit(Job("other", 100.0, 1, 0.0))
        assert server.lepton_count == 1
        assert server.active_jobs == 2

    def test_busy_core_seconds_accounted(self):
        clock = SimClock()
        server = BlockServer(clock, 0)
        server.submit(Job("lepton_encode", 8.0, 8, 0.0))
        clock.run_all()
        assert server.busy_core_seconds == pytest.approx(8.0)


class TestThpStalls:
    def test_first_conversion_pays_the_stall(self):
        clock = SimClock()
        server = BlockServer(clock, 0, thp_enabled=True, thp_stall_seconds=2.0)
        done = []
        job = Job("lepton_decode", 8.0, 8, 0.0, on_complete=done.append)
        server.submit(job)
        clock.run_all()
        assert done[0].finish_time > 1.0  # 1.0s of work + stall share

    def test_stall_amortised_over_credit_window(self):
        """§6.3: one stall, then ~10 cheap decodes — the tail suffers, the
        median does not."""
        clock = SimClock()
        server = BlockServer(clock, 0, thp_enabled=True,
                             thp_stall_seconds=2.0, thp_credit=10)
        latencies = []

        def submit_next(i=0):
            if i >= 12:
                return
            job = Job("lepton_decode", 4.0, 8, clock.now,
                      on_complete=lambda j: (latencies.append(j.latency),
                                             submit_next(i + 1)))
            server.submit(job)

        submit_next()
        clock.run_all()
        assert latencies[0] > max(latencies[1:11])  # only the first stalls

    def test_disabled_thp_no_stall(self):
        clock = SimClock()
        server = BlockServer(clock, 0, thp_enabled=False)
        done = []
        server.submit(Job("lepton_decode", 8.0, 8, 0.0, on_complete=done.append))
        clock.run_all()
        assert done[0].finish_time == pytest.approx(1.0)  # 8 units / 8 cores


class TestWorkModel:
    def test_encode_work_linear_in_size(self):
        assert encode_work(2 * 1024 * 1024) == pytest.approx(2 * encode_work(1024 * 1024))

    def test_decode_cheaper_than_encode(self):
        assert decode_work(1024 * 1024) < encode_work(1024 * 1024)

    def test_median_file_encode_near_paper_p50(self):
        """A 1.5-MiB file on an idle box lands near the paper's 170 ms."""
        job_seconds = encode_work(int(1.5 * 1024 * 1024)) / 8  # 8 threads
        assert 0.1 < job_seconds < 0.3
