"""Backend contract suite: blob codec, filesystem atomicity, fault
wrapper, and replicated quorum/read-repair (docs/durability.md)."""

import os

import pytest

from repro.faults.plan import StorageFaultConfig
from repro.obs import MetricsRegistry
from repro.storage.backends import (
    BackendError,
    BackendUnavailable,
    BlobError,
    FaultyBackend,
    FilesystemBackend,
    MemoryBackend,
    ReplicatedBackend,
    blob_ok,
    decode_blob,
    encode_blob,
)

pytestmark = pytest.mark.durability


# -- self-describing blobs -------------------------------------------------


def test_blob_round_trip_stamps_md5():
    blob = encode_blob({"index": 3, "format": "lepton"}, b"payload bytes")
    meta, payload = decode_blob(blob)
    assert payload == b"payload bytes"
    assert meta["index"] == 3
    import hashlib

    assert meta["md5"] == hashlib.md5(b"payload bytes").hexdigest()
    assert blob_ok(blob)


@pytest.mark.parametrize("mangle", [
    lambda b: b[:3],                       # shorter than the magic
    lambda b: b"XXXX" + b[4:],             # wrong magic
    lambda b: b[:10],                      # meta header truncated
])
def test_decode_blob_rejects_structural_damage(mangle):
    blob = encode_blob({"k": 1}, b"x" * 64)
    with pytest.raises(BlobError):
        decode_blob(mangle(blob))
    assert not blob_ok(mangle(blob))


def test_torn_payload_parses_but_fails_the_digest_gate():
    """A tear past the meta header is structurally valid JSON+payload;
    only the stamped md5 can catch it — which is why ``blob_ok`` (not
    ``decode_blob``) is the replicated read's validator."""
    blob = encode_blob({"k": 1}, b"x" * 64)
    torn = blob[: len(blob) // 2]
    meta, payload = decode_blob(torn)  # parses fine
    assert len(payload) < 64
    assert not blob_ok(torn)


def test_blob_ok_catches_payload_rot_that_still_parses():
    blob = encode_blob({"k": 1}, b"a" * 32)
    rotted = blob[:-1] + bytes([blob[-1] ^ 0xFF])  # flip one payload byte
    meta, payload = decode_blob(rotted)  # structurally fine
    assert payload != b"a" * 32 or meta  # parses...
    assert not blob_ok(rotted)           # ...but the digest disagrees


# -- memory + filesystem ---------------------------------------------------


@pytest.fixture(params=["memory", "filesystem"])
def backend(request, tmp_path):
    if request.param == "memory":
        return MemoryBackend()
    return FilesystemBackend(str(tmp_path / "blobs"))


def test_backend_contract(backend):
    with pytest.raises(KeyError):
        backend.read("chunk/missing")
    backend.write("chunk/aa11", b"one")
    backend.write("orig/aa11", b"two")
    backend.write("chunk/bb22", b"three")
    assert backend.read("chunk/aa11") == b"one"
    backend.write("chunk/aa11", b"replaced")  # overwrite allowed
    assert backend.read("chunk/aa11") == b"replaced"
    assert backend.keys("chunk/") == ["chunk/aa11", "chunk/bb22"]
    assert backend.keys() == ["chunk/aa11", "chunk/bb22", "orig/aa11"]
    assert backend.exists("orig/aa11")
    backend.delete("orig/aa11")
    backend.delete("orig/aa11")  # idempotent
    assert not backend.exists("orig/aa11")
    health = backend.describe()
    assert health["keys"] == 2


def test_filesystem_rejects_traversal_keys(tmp_path):
    fs = FilesystemBackend(str(tmp_path / "blobs"))
    for key in ("", "../escape", "chunk/..", "chunk//x", "chunk/a b"):
        with pytest.raises(BackendError):
            fs.write(key, b"x")


def test_filesystem_leaves_no_tmp_files_and_hides_them(tmp_path):
    root = tmp_path / "blobs"
    fs = FilesystemBackend(str(root))
    fs.write("chunk/aa", b"x" * 128)
    # Simulate an interrupted write: a stray .tmp sibling on disk.
    stray = root / "chunk" / "bb.tmp"
    stray.write_bytes(b"partial")
    assert fs.keys() == ["chunk/aa"]  # the debris is never a visible blob
    leftovers = [f for _, _, fs_ in os.walk(root) for f in fs_
                 if f.endswith(".tmp")]
    assert leftovers == ["bb.tmp"]  # only the simulated one, none of ours


# -- the fault wrapper -----------------------------------------------------


def test_faulty_backend_torn_writes_are_silent_but_detectable():
    registry = MetricsRegistry()
    inner = MemoryBackend()
    cfg = StorageFaultConfig(write_torn_probability=1.0)
    faulty = FaultyBackend(inner, cfg, seed=7, registry=registry)
    blob = encode_blob({"k": 1}, b"z" * 200)
    faulty.write("chunk/aa", blob)  # returns as if it landed whole
    stored = inner.read("chunk/aa")
    assert len(stored) < len(blob)
    assert not blob_ok(stored)  # the checksummed blob catches the tear
    assert faulty.injected == 1


def test_faulty_backend_read_corruption_is_transient():
    inner = MemoryBackend()
    cfg = StorageFaultConfig(read_corrupt_probability=1.0)
    faulty = FaultyBackend(inner, cfg, seed=7, registry=MetricsRegistry())
    blob = encode_blob({"k": 1}, b"z" * 200)
    faulty.write("chunk/aa", blob)
    assert not blob_ok(faulty.read("chunk/aa"))  # corrupted in flight
    assert inner.read("chunk/aa") == blob        # at rest it is pristine


def test_faulty_backend_unavailability_and_determinism():
    cfg = StorageFaultConfig(unavailable_probability=0.5)

    def run():
        inner = MemoryBackend()
        faulty = FaultyBackend(inner, cfg, seed=11,
                               registry=MetricsRegistry())
        outcomes = []
        for i in range(20):
            try:
                faulty.write(f"chunk/k{i}", b"x")
                outcomes.append("ok")
            except BackendUnavailable:
                outcomes.append("down")
        return outcomes

    first, second = run(), run()
    assert first == second  # same seed, same fault sequence
    assert "down" in first and "ok" in first


# -- replication -----------------------------------------------------------


def _good_blob(payload=b"p" * 64):
    return encode_blob({"index": 0, "format": "raw", "osize": len(payload)},
                       payload)


def test_replicated_write_lands_everywhere_and_read_validates():
    members = [MemoryBackend() for _ in range(3)]
    rep = ReplicatedBackend(members, registry=MetricsRegistry())
    blob = _good_blob()
    rep.write("chunk/aa", blob)
    assert all(m.read("chunk/aa") == blob for m in members)
    assert rep.read("chunk/aa") == blob


def test_replicated_read_repair_heals_rotten_and_missing_replicas():
    registry = MetricsRegistry()
    members = [MemoryBackend() for _ in range(3)]
    rep = ReplicatedBackend(members, registry=registry)
    blob = _good_blob()
    rep.write("chunk/aa", blob)
    members[0].write("chunk/aa", blob[:10])  # rot replica 0
    members[1].delete("chunk/aa")            # lose replica 1
    assert rep.read("chunk/aa") == blob      # served from replica 2
    assert members[0].read("chunk/aa") == blob  # both healed in-band
    assert members[1].read("chunk/aa") == blob
    repairs = {tuple(l.items()): c.value
               for l, c in registry.series("replication.read_repairs")}
    assert sum(repairs.values()) == 2


def test_replicated_read_raises_on_missing_vs_invalid():
    members = [MemoryBackend() for _ in range(2)]
    rep = ReplicatedBackend(members, registry=MetricsRegistry())
    with pytest.raises(KeyError):
        rep.read("chunk/nowhere")  # missing everywhere: KeyError
    for m in members:
        m.write("chunk/rot", b"garbage")
    with pytest.raises(BlobError):
        rep.read("chunk/rot")  # present everywhere, valid nowhere


def test_replicated_write_quorum():
    down = StorageFaultConfig(unavailable_probability=1.0)
    registry = MetricsRegistry()
    members = [
        MemoryBackend(),
        FaultyBackend(MemoryBackend(), down, registry=registry),
        FaultyBackend(MemoryBackend(), down, registry=registry),
    ]
    rep = ReplicatedBackend(members, registry=registry)  # majority = 2
    with pytest.raises(BackendError):
        rep.write("chunk/aa", _good_blob())
    rep2 = ReplicatedBackend(members, write_quorum=1, registry=registry)
    rep2.write("chunk/aa", _good_blob())  # 1/3 accepted, quorum met
    partial = {tuple(l.items()): c.value
               for l, c in registry.series("replication.partial_writes")}
    assert sum(partial.values()) >= 1


def test_replicated_read_quorum_unavailable():
    down = StorageFaultConfig(unavailable_probability=1.0)
    registry = MetricsRegistry()
    members = [FaultyBackend(MemoryBackend(), down, registry=registry)
               for _ in range(3)]
    rep = ReplicatedBackend(members, read_quorum=1, registry=registry)
    with pytest.raises(BackendUnavailable):
        rep.read("chunk/aa")  # nobody responded at all


def test_replicated_backend_rejects_empty_and_bad_quorum():
    with pytest.raises(BackendError):
        ReplicatedBackend([])
    with pytest.raises(BackendError):
        ReplicatedBackend([MemoryBackend()], write_quorum=2)
