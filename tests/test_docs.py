"""The documentation is executable and the telemetry contract is complete.

Two guarantees:

* every fenced ``python`` block in README.md and docs/*.md actually runs
  (blocks within one file share a namespace, seeded with ``jpeg_bytes``);
* every metric name the system emits during a representative workload
  appears, backticked, in docs/observability.md — so an undocumented or
  renamed metric fails here.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])

_FENCE = re.compile(r"^```python\n(.*?)^```", re.MULTILINE | re.DOTALL)


def _python_blocks(path: Path):
    return _FENCE.findall(path.read_text())


def test_collector_sees_known_blocks():
    """Guard the extractor itself: these files are known to hold blocks."""
    assert _python_blocks(REPO / "README.md")
    assert _python_blocks(REPO / "docs" / "observability.md")


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_python_blocks_run(path, small_jpeg):
    blocks = _python_blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no python blocks")
    namespace = {"jpeg_bytes": small_jpeg}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"{path.name}[block {i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - diagnostic path
            pytest.fail(
                f"{path.name} python block {i} failed: {type(exc).__name__}: {exc}"
                f"\n---\n{block}"
            )


# -- the telemetry contract ------------------------------------------------


def _emitted_metric_names(small_jpeg):
    """Run a representative workload, return every metric name it emits."""
    from repro import compress, decompress
    from repro.core.lepton import LeptonConfig
    from repro.obs import MetricsRegistry, get_registry
    from repro.storage.backfill import BackfillWorker, Metaserver, UserFile
    from repro.storage.fleet import FleetConfig, FleetSim

    names = set()

    # Codec path (global registry): success + a classified reject.
    compress(small_jpeg, LeptonConfig(threads=2))
    result = compress(small_jpeg)
    decompress(result.payload)
    compress(b"not a jpeg")                       # Deflate fallback
    names.update(get_registry().names())

    # Backfill path (private registry).
    users = {0: [UserFile("a.jpg", small_jpeg), UserFile("b.bin", b"junk")]}
    meta = Metaserver(users, n_shards=1, chunk_size=1 << 22)
    worker = BackfillWorker(meta, lambda k, v: None, LeptonConfig(threads=1),
                            registry=MetricsRegistry())
    worker.process_shard(0)
    names.update(worker.registry.names())
    names.update(get_registry().names())          # backfill spans land globally

    # Fleet simulation (per-sim registry).
    sim = FleetSim(FleetConfig(duration_hours=0.05, seed=9))
    sim.run()
    names.update(sim.registry.names())
    return names


def test_every_emitted_metric_is_documented(small_jpeg):
    contract = (REPO / "docs" / "observability.md").read_text()
    documented = set(re.findall(r"`([a-z0-9_.]+(?:\.[a-z0-9_]+)+)`", contract))
    emitted = _emitted_metric_names(small_jpeg)
    assert emitted, "workload emitted no metrics — instrumentation broken?"
    undocumented = {name for name in emitted if name not in documented}
    assert not undocumented, (
        "metrics emitted but missing from docs/observability.md: "
        f"{sorted(undocumented)}"
    )


# -- the lint-rule contract ------------------------------------------------


def test_every_lint_rule_is_documented_and_vice_versa():
    """docs/lint.md and the rule registry must agree in both directions:
    a registered rule without documentation is unexplainable to whoever
    hits it, and a documented id without a rule is a stale promise."""
    from repro.lint import all_rules

    contract = (REPO / "docs" / "lint.md").read_text()
    documented = set(re.findall(r"^### (D\d+) —", contract, re.MULTILINE))
    registered = {rule.id for rule in all_rules()}
    assert registered, "rule registry is empty"
    assert documented == registered, (
        f"undocumented rules: {sorted(registered - documented)}; "
        f"documented but unregistered: {sorted(documented - registered)}"
    )
    for rule in all_rules():
        assert rule.name in contract, (
            f"rule {rule.id}'s name {rule.name!r} missing from docs/lint.md"
        )


# -- the serve API contract (docs/serve.md, both directions) ---------------


def _serve_doc() -> str:
    return (REPO / "docs" / "serve.md").read_text()


def test_every_serve_endpoint_is_documented_and_vice_versa():
    """The endpoint table and repro.serve.ENDPOINTS must agree exactly."""
    from repro.serve import ENDPOINTS

    documented = set(
        re.findall(r"\| `([A-Z]+) (/[^`\s]*)` \|", _serve_doc())
    )
    assert documented == set(ENDPOINTS), (
        f"undocumented endpoints: {sorted(set(ENDPOINTS) - documented)}; "
        f"documented but unserved: {sorted(documented - set(ENDPOINTS))}"
    )


def test_every_serve_status_is_documented_and_vice_versa():
    """The status table and the closed STATUS_REASONS set must agree."""
    from repro.serve import STATUS_REASONS

    documented = {
        int(code) for code in re.findall(r"^\| `(\d{3})` \|", _serve_doc(),
                                         re.MULTILINE)
    }
    assert documented == set(STATUS_REASONS), (
        f"undocumented statuses: {sorted(set(STATUS_REASONS) - documented)}; "
        f"documented but unemittable: {sorted(documented - set(STATUS_REASONS))}"
    )


def _serve_metric_names(small_jpeg):
    """Boot a server, run a representative workload, return serve.* names."""
    import asyncio

    from repro.serve import LeptonServer, ServeClient, ServeConfig

    async def _main():
        server = LeptonServer(ServeConfig(chunk_size=4096, quota_bytes=10**6))
        await server.start()
        try:
            async with ServeClient("127.0.0.1", server.port) as client:
                put = await client.put_file(small_jpeg)
                await client.get_file(put.json()["id"])
                await client.get_file(put.json()["id"],
                                      byte_range="bytes=0-9")
                await client.request("GET", "/healthz")
                await client.request("GET", "/metrics")
        finally:
            await server.drain()
        return {name for name in server.registry.names()
                if name.startswith("serve.")}

    return asyncio.run(_main())


def test_every_serve_metric_is_documented_and_vice_versa(small_jpeg):
    """All serve.* instruments appear in docs/serve.md and vice versa.

    Instruments are pre-declared at server startup, so one in-process
    workload registers the complete surface.
    """
    documented = {
        name for name in re.findall(r"`([a-z0-9_.]+(?:\.[a-z0-9_]+)+)`",
                                    _serve_doc())
        if name.startswith("serve.")
    }
    emitted = _serve_metric_names(small_jpeg)
    assert emitted, "serve workload emitted no serve.* metrics"
    assert emitted == documented, (
        f"emitted but undocumented: {sorted(emitted - documented)}; "
        f"documented but never registered: {sorted(documented - emitted)}"
    )


def test_healthz_carries_the_documented_sections(small_jpeg):
    """docs/serve.md names the /healthz sections (`breakers` board with
    per-route state, `uploads` progress counters); a live response must
    really carry them, with exactly the documented keys."""
    import asyncio

    from repro.serve import LeptonServer, ServeClient, ServeConfig

    async def _main():
        server = LeptonServer(ServeConfig(chunk_size=4096))
        await server.start()
        try:
            async with ServeClient("127.0.0.1", server.port) as client:
                put = await client.put_file(small_jpeg)
                await client.get_file(put.json()["id"])
                return (await client.request("GET", "/healthz")).json()
        finally:
            await server.drain()

    health = asyncio.run(_main())
    assert set(health["uploads"]) == {"open", "completed", "recovered",
                                      "dropped_parts"}
    board = health["breakers"]
    assert board, "no breaker entries after data-plane traffic"
    for route, entry in board.items():
        assert route.startswith("/"), route
        assert set(entry) == {"state", "failures", "trips", "retry_after"}
        assert entry["state"] in ("closed", "open", "half_open")


def test_documented_codec_metrics_are_emitted(small_jpeg):
    """The reverse direction, for the core codec table: the contract's
    headline metrics really exist after one compress+decompress."""
    from repro import compress, decompress
    from repro.obs import get_registry

    result = compress(small_jpeg)
    decompress(result.payload)
    names = set(get_registry().names())
    for expected in [
        "lepton.compress.attempts",
        "lepton.compress.exit_codes",
        "lepton.compress.input_bytes",
        "lepton.compress.output_bytes",
        "lepton.compress.seconds",
        "lepton.decompress.count",
        "lepton.decompress.seconds",
        "span.lepton.compress.wall_seconds",
        "span.lepton.encode.parse.wall_seconds",
        "span.lepton.encode.scan_decode.wall_seconds",
        "span.lepton.encode.verify_index.wall_seconds",
        "span.lepton.encode.code_segment.wall_seconds",
        "span.lepton.encode.container.wall_seconds",
        "span.lepton.decompress.wall_seconds",
    ]:
        assert expected in names, f"{expected} missing from the registry"
