"""Pixel reconstruction: the writer/decoder fidelity loop."""

import numpy as np
import pytest

from repro.corpus.images import flat_image, synthetic_photo
from repro.jpeg.errors import JpegError
from repro.jpeg.parser import parse_jpeg
from repro.jpeg.pixels import decode_pixels, psnr, ycbcr_to_rgb
from repro.jpeg.scan_decode import decode_scan
from repro.jpeg.writer import encode_baseline_jpeg, rgb_to_ycbcr


def _decode(data):
    img = parse_jpeg(data)
    decode_scan(img)
    return decode_pixels(img)


class TestDecodePixels:
    def test_flat_gray_recovered_exactly_enough(self):
        pixels = flat_image(32, 32, value=100)
        out = _decode(encode_baseline_jpeg(pixels, quality=95))
        assert out.shape == (32, 32)
        assert np.abs(out.astype(int) - 100).max() <= 2

    def test_high_quality_photo_psnr(self):
        pixels = synthetic_photo(64, 64, seed=1, noise=0.0)
        out = _decode(encode_baseline_jpeg(pixels, quality=95))
        assert out.shape == pixels.shape
        assert psnr(pixels, out) > 32.0

    def test_grayscale_shape(self):
        pixels = synthetic_photo(40, 48, seed=2, grayscale=True)
        out = _decode(encode_baseline_jpeg(pixels, quality=90))
        assert out.shape == (40, 48)

    def test_subsampled_chroma_still_decodes(self):
        pixels = synthetic_photo(48, 48, seed=3, noise=0.0)
        out = _decode(encode_baseline_jpeg(pixels, quality=92,
                                           subsampling="4:2:0"))
        assert psnr(pixels, out) > 26.0  # chroma loss is expected

    def test_odd_dimensions_cropped(self):
        pixels = synthetic_photo(37, 61, seed=4)
        out = _decode(encode_baseline_jpeg(pixels, quality=90,
                                           subsampling="4:2:0"))
        assert out.shape == (37, 61, 3)

    def test_quality_monotone_in_psnr(self):
        pixels = synthetic_photo(48, 48, seed=5, noise=0.0)
        low = psnr(pixels, _decode(encode_baseline_jpeg(pixels, quality=30)))
        high = psnr(pixels, _decode(encode_baseline_jpeg(pixels, quality=92)))
        assert high > low

    def test_requires_scan_decode(self):
        data = encode_baseline_jpeg(flat_image(8, 8))
        img = parse_jpeg(data)
        with pytest.raises(JpegError):
            decode_pixels(img)


class TestColourMatrices:
    def test_rgb_ycbcr_inverse(self):
        rng = np.random.default_rng(0)
        rgb = rng.integers(0, 256, (5, 7, 3)).astype(np.float64)
        ycc = rgb_to_ycbcr(rgb.astype(np.uint8))
        back = ycbcr_to_rgb(ycc[..., 0], ycc[..., 1], ycc[..., 2])
        assert np.allclose(back, rgb, atol=0.01)


class TestPsnr:
    def test_identical_images_infinite(self):
        img = synthetic_photo(16, 16, seed=6)
        assert psnr(img, img) == float("inf")

    def test_known_mse(self):
        a = np.zeros((4, 4), dtype=np.uint8)
        b = np.full((4, 4), 255, dtype=np.uint8)
        assert psnr(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.zeros((3, 3)))
