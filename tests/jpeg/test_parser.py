"""JPEG marker parsing and the rejection taxonomy."""

import struct

import numpy as np
import pytest

from repro.corpus import corruptions
from repro.corpus.builder import corpus_jpeg
from repro.jpeg.errors import JpegError, TruncatedJpegError, UnsupportedJpegError
from repro.jpeg.parser import find_scan_end, parse_jpeg


class TestParseValid:
    def test_parses_colour_jpeg(self, small_jpeg):
        img = parse_jpeg(small_jpeg)
        assert img.frame.width == 64
        assert img.frame.height == 64
        assert len(img.frame.components) == 3
        assert img.frame.precision == 8

    def test_header_plus_scan_plus_trailer_reassembles(self, small_jpeg):
        img = parse_jpeg(small_jpeg)
        assert img.original_bytes() == small_jpeg

    def test_grayscale_single_component(self, gray_jpeg):
        img = parse_jpeg(gray_jpeg)
        assert len(img.frame.components) == 1
        assert not img.frame.interleaved

    def test_subsampling_factors(self, small_jpeg):
        img = parse_jpeg(small_jpeg)  # 4:2:0
        luma = img.frame.components[0]
        assert (luma.h, luma.v) == (2, 2)
        assert img.frame.components[1].h == 1

    def test_mcu_geometry_420(self, small_jpeg):
        img = parse_jpeg(small_jpeg)
        assert img.frame.mcus_x == 4  # 64 / 16
        assert img.frame.mcus_y == 4
        assert img.frame.components[0].blocks_w == 8

    def test_restart_interval_parsed(self, rst_jpeg):
        img = parse_jpeg(rst_jpeg)
        assert img.restart_interval == 3

    def test_quant_and_huffman_tables_present(self, small_jpeg):
        img = parse_jpeg(small_jpeg)
        assert set(img.quant_tables) == {0, 1}
        assert set(img.huffman_tables) == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_trailer_preserved(self, trailer_jpeg):
        img = parse_jpeg(trailer_jpeg)
        assert img.trailer_bytes.startswith(b"\xFF\xD9")
        assert b"TV-FORMAT-TRAILER" in img.trailer_bytes

    def test_comment_stays_in_header(self, trailer_jpeg):
        img = parse_jpeg(trailer_jpeg)
        assert b"synthetic camera" in img.header_bytes

    def test_odd_dimensions(self, odd_jpeg):
        img = parse_jpeg(odd_jpeg)
        assert (img.frame.width, img.frame.height) == (61, 37)
        assert img.frame.mcus_x == (61 + 15) // 16


class TestRejects:
    def test_progressive_rejected(self, small_jpeg):
        data = corruptions.make_progressive(small_jpeg)
        with pytest.raises(UnsupportedJpegError) as exc:
            parse_jpeg(data)
        assert exc.value.reason == "progressive"

    def test_arithmetic_rejected(self, small_jpeg):
        data = corruptions.make_arithmetic(small_jpeg)
        with pytest.raises(UnsupportedJpegError) as exc:
            parse_jpeg(data)
        assert exc.value.reason == "arithmetic"

    def test_cmyk_rejected(self):
        with pytest.raises(UnsupportedJpegError) as exc:
            parse_jpeg(corruptions.make_cmyk())
        assert exc.value.reason == "cmyk"

    def test_header_only_rejected(self, small_jpeg):
        data = corruptions.make_header_only(small_jpeg)
        with pytest.raises(JpegError):
            parse_jpeg(data)

    def test_not_soi_rejected(self):
        with pytest.raises(JpegError):
            parse_jpeg(b"PNG\x00\x01\x02\x03")

    def test_empty_rejected(self):
        with pytest.raises(JpegError):
            parse_jpeg(b"")

    def test_truncated_segment_rejected(self, small_jpeg):
        with pytest.raises(TruncatedJpegError):
            parse_jpeg(small_jpeg[:8])

    def test_large_sampling_factors_rejected(self, small_jpeg):
        # Patch the luma sampling factors in SOF to 4x4.
        idx = small_jpeg.find(bytes([0xFF, 0xC0]))
        body = bytearray(small_jpeg)
        body[idx + 11] = 0x44  # first component's HV byte
        with pytest.raises(UnsupportedJpegError) as exc:
            parse_jpeg(bytes(body))
        assert exc.value.reason == "chroma_subsample"

    def test_twelve_bit_precision_rejected(self, small_jpeg):
        idx = small_jpeg.find(bytes([0xFF, 0xC0]))
        body = bytearray(small_jpeg)
        body[idx + 4] = 12
        with pytest.raises(UnsupportedJpegError) as exc:
            parse_jpeg(bytes(body))
        assert exc.value.reason == "precision"

    def test_dht_overflow_rejected(self):
        """The §6.7 fuzzing bug: DHT claiming more values than the segment
        holds must be rejected, not read out of bounds."""
        dht_bits = bytes([0x00]) + bytes([0, 16] + [0] * 14)  # claims 16 values
        payload = dht_bits + b"\x01\x02"  # provides only 2
        segment = struct.pack(">BBH", 0xFF, 0xC4, len(payload) + 2) + payload
        data = b"\xFF\xD8" + segment
        with pytest.raises(TruncatedJpegError):
            parse_jpeg(data)

    def test_zero_quant_entry_rejected(self, small_jpeg):
        idx = small_jpeg.find(bytes([0xFF, 0xDB]))
        body = bytearray(small_jpeg)
        body[idx + 5] = 0  # first table value → 0
        with pytest.raises(JpegError):
            parse_jpeg(bytes(body))

    def test_missing_quant_table_rejected(self, gray_jpeg):
        # Point the component at a table id that was never defined.
        idx = gray_jpeg.find(bytes([0xFF, 0xC0]))
        body = bytearray(gray_jpeg)
        body[idx + 12] = 3
        with pytest.raises(JpegError):
            parse_jpeg(bytes(body))

    def test_random_bytes_with_soi_rejected(self):
        data = corruptions.not_an_image(seed=3)
        with pytest.raises(JpegError):
            parse_jpeg(data)


class TestScanEnd:
    def test_scan_end_at_eoi(self, small_jpeg):
        img = parse_jpeg(small_jpeg)
        end = find_scan_end(small_jpeg, img.scan_start)
        assert small_jpeg[end : end + 2] == b"\xFF\xD9"

    def test_rst_markers_do_not_end_scan(self, rst_jpeg):
        img = parse_jpeg(rst_jpeg)
        assert any(
            img.scan_data[i] == 0xFF and 0xD0 <= img.scan_data[i + 1] <= 0xD7
            for i in range(len(img.scan_data) - 1)
        )

    def test_truncated_scan_runs_to_end(self, small_jpeg):
        cut = corruptions.truncate(small_jpeg, keep_fraction=0.7)
        img = parse_jpeg(cut)
        assert img.trailer_bytes == b""
        assert img.scan_data == cut[img.scan_start :]
