"""Canonical Huffman tables: build, code, optimise."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg.bitio import BitReader, BitWriter
from repro.jpeg.errors import JpegError
from repro.jpeg.huffman import (
    STD_AC_CHROMA,
    STD_AC_LUMA,
    STD_DC_CHROMA,
    STD_DC_LUMA,
    HuffmanTable,
    build_optimal_table,
)


def _roundtrip_symbols(table, symbols):
    w = BitWriter()  # stuffing on: matches the scan reader's expectations
    for s in symbols:
        code, length = table.encode_symbol(s)
        w.write_bits(code, length)
    w.pad_to_byte(0)
    r = BitReader(w.getvalue())
    return [table.decode_symbol(r) for _ in symbols]


class TestCanonicalTables:
    def test_simple_table_codes(self):
        # bits: one 1-bit code, two 2-bit codes.
        t = HuffmanTable([1, 2] + [0] * 14, [5, 6, 7])
        assert t.encode_symbol(5) == (0b0, 1)
        assert t.encode_symbol(6) == (0b10, 2)
        assert t.encode_symbol(7) == (0b11, 2)

    def test_decode_inverts_encode(self):
        t = HuffmanTable([0, 2, 2] + [0] * 13, [1, 2, 3, 4])
        assert _roundtrip_symbols(t, [4, 1, 3, 2, 2]) == [4, 1, 3, 2, 2]

    def test_std_tables_roundtrip(self):
        for table in (STD_DC_LUMA, STD_DC_CHROMA, STD_AC_LUMA, STD_AC_CHROMA):
            symbols = table.values[:: max(1, len(table.values) // 17)]
            assert _roundtrip_symbols(table, symbols) == symbols

    def test_std_ac_luma_shape(self):
        assert sum(STD_AC_LUMA.bits) == 162
        assert STD_AC_LUMA.max_length == 16

    def test_unknown_symbol_raises(self):
        t = HuffmanTable([1] + [0] * 15, [9])
        with pytest.raises(JpegError):
            t.encode_symbol(10)

    def test_contains(self):
        t = HuffmanTable([1] + [0] * 15, [9])
        assert 9 in t
        assert 10 not in t

    def test_invalid_code_in_stream_raises(self):
        t = HuffmanTable([1] + [0] * 15, [9])  # only code "0" defined
        r = BitReader(bytes([0xFF, 0x00]))  # all ones: never matches
        with pytest.raises(JpegError):
            t.decode_symbol(r)

    def test_bits_values_mismatch_rejected(self):
        with pytest.raises(JpegError):
            HuffmanTable([2] + [0] * 15, [1])

    def test_code_overflow_rejected(self):
        # Three 1-bit codes cannot exist.
        with pytest.raises(JpegError):
            HuffmanTable([3] + [0] * 15, [1, 2, 3])

    def test_empty_table_rejected(self):
        with pytest.raises(JpegError):
            HuffmanTable([0] * 16, [])

    def test_dht_payload_layout(self):
        t = HuffmanTable([1, 1] + [0] * 14, [3, 4])
        payload = t.dht_payload(1, 2)
        assert payload[0] == 0x12
        assert list(payload[1:17]) == t.bits
        assert list(payload[17:]) == [3, 4]

    def test_equality(self):
        a = HuffmanTable([1, 1] + [0] * 14, [3, 4])
        b = HuffmanTable([1, 1] + [0] * 14, [3, 4])
        c = HuffmanTable([1, 1] + [0] * 14, [4, 3])
        assert a == b
        assert a != c


class TestOptimalTables:
    def test_skewed_frequencies_get_short_codes(self):
        freq = {0: 1000, 1: 10, 2: 10, 3: 1}
        t = build_optimal_table(freq)
        assert t.encode_symbol(0)[1] < t.encode_symbol(3)[1]

    def test_all_lengths_within_16(self):
        # Fibonacci-ish frequencies force long codes; must stay JPEG-legal.
        freq = {i: max(1, 2**i) for i in range(40)}
        t = build_optimal_table(freq)
        assert t.max_length <= 16

    def test_roundtrips(self):
        freq = {i: (i * 37) % 11 + 1 for i in range(25)}
        t = build_optimal_table(freq)
        symbols = sorted(freq)
        assert _roundtrip_symbols(t, symbols) == symbols

    def test_single_symbol_table(self):
        t = build_optimal_table({7: 100})
        code, length = t.encode_symbol(7)
        assert length >= 1

    def test_no_symbols_raises(self):
        with pytest.raises(JpegError):
            build_optimal_table({})

    def test_zero_count_symbols_skipped(self):
        t = build_optimal_table({1: 10, 2: 0})
        assert 1 in t
        assert 2 not in t

    def test_beats_standard_table_on_skewed_data(self):
        # An optimal table should never be longer than Annex K on its own
        # empirical distribution (over the symbols it contains).
        freq = {0x01: 5000, 0x02: 100, 0x00: 2500, 0x11: 30}
        optimal = build_optimal_table(freq)
        cost_optimal = sum(optimal.encode_symbol(s)[1] * n for s, n in freq.items())
        cost_std = sum(STD_AC_LUMA.encode_symbol(s)[1] * n for s, n in freq.items())
        assert cost_optimal <= cost_std

    @settings(max_examples=40, deadline=None)
    @given(st.dictionaries(st.integers(0, 255), st.integers(1, 10_000),
                           min_size=1, max_size=64))
    def test_optimal_table_always_legal_and_decodable(self, freq):
        t = build_optimal_table(freq)
        assert t.max_length <= 16
        symbols = sorted(freq)
        assert _roundtrip_symbols(t, symbols) == symbols
