"""DCT basis, quantisation tables, zigzag maps."""

import numpy as np
import pytest

from repro.jpeg.dct import BASIS, fdct2, idct2, idct2_rows
from repro.jpeg.quant import CHROMA_BASE, LUMA_BASE, quality_tables, scale_table
from repro.jpeg.zigzag import (
    LEFT_COL_RASTER,
    RASTER_TO_ZIGZAG,
    SEVEN_BY_SEVEN_RASTER,
    TOP_ROW_RASTER,
    ZIGZAG_TO_RASTER,
    from_zigzag,
    to_zigzag,
)


class TestDct:
    def test_basis_is_orthonormal(self):
        assert np.allclose(BASIS @ BASIS.T, np.eye(8), atol=1e-12)

    def test_idct_inverts_fdct(self):
        rng = np.random.default_rng(0)
        block = rng.uniform(-128, 127, (8, 8))
        assert np.allclose(idct2(fdct2(block)), block, atol=1e-9)

    def test_constant_block_is_pure_dc(self):
        coeffs = fdct2(np.full((8, 8), 100.0))
        assert coeffs[0, 0] == pytest.approx(800.0)
        assert np.allclose(coeffs.flatten()[1:], 0.0, atol=1e-9)

    def test_batched_blocks(self):
        rng = np.random.default_rng(1)
        blocks = rng.uniform(-10, 10, (3, 5, 8, 8))
        assert np.allclose(idct2(fdct2(blocks)), blocks, atol=1e-9)

    def test_idct_rows_matches_full(self):
        rng = np.random.default_rng(2)
        coeffs = rng.uniform(-50, 50, (8, 8))
        full = idct2(coeffs)
        assert np.allclose(idct2_rows(coeffs, slice(0, 2)), full[0:2], atol=1e-9)

    def test_dc_basis_value(self):
        # DC basis contributes coefficient/8 per pixel (used by the DC
        # predictor's fixed-point math).
        coeffs = np.zeros((8, 8))
        coeffs[0, 0] = 8.0
        assert np.allclose(idct2(coeffs), 1.0)


class TestQuant:
    def test_quality_50_is_base(self):
        assert np.array_equal(scale_table(LUMA_BASE, 50), LUMA_BASE)

    def test_quality_100_is_all_ones(self):
        assert np.all(scale_table(LUMA_BASE, 100) == 1)

    def test_lower_quality_coarser(self):
        q30 = scale_table(LUMA_BASE, 30)
        q80 = scale_table(LUMA_BASE, 80)
        assert np.all(q30 >= q80)

    def test_values_clipped_to_byte(self):
        q1 = scale_table(CHROMA_BASE, 1)
        assert q1.max() <= 255
        assert q1.min() >= 1

    @pytest.mark.parametrize("quality", [0, 101, -5])
    def test_invalid_quality_rejected(self, quality):
        with pytest.raises(ValueError):
            scale_table(LUMA_BASE, quality)

    def test_quality_tables_pair(self):
        luma, chroma = quality_tables(75)
        assert luma.shape == (64,)
        assert chroma.shape == (64,)
        assert not np.array_equal(luma, chroma)


class TestZigzag:
    def test_zigzag_is_permutation(self):
        assert sorted(ZIGZAG_TO_RASTER.tolist()) == list(range(64))

    def test_maps_are_inverse(self):
        for raster in range(64):
            assert ZIGZAG_TO_RASTER[RASTER_TO_ZIGZAG[raster]] == raster

    def test_first_entries_match_spec(self):
        assert ZIGZAG_TO_RASTER[:6].tolist() == [0, 1, 8, 16, 9, 2]

    def test_to_from_zigzag_roundtrip(self):
        block = np.arange(64)
        assert np.array_equal(from_zigzag(to_zigzag(block)), block)

    def test_category_partition_is_complete(self):
        union = set(SEVEN_BY_SEVEN_RASTER) | set(TOP_ROW_RASTER) | set(LEFT_COL_RASTER) | {0}
        assert union == set(range(64))
        assert len(SEVEN_BY_SEVEN_RASTER) == 49
        assert len(TOP_ROW_RASTER) == 7
        assert len(LEFT_COL_RASTER) == 7

    def test_top_row_is_first_coefficient_row(self):
        assert all(r // 8 == 0 and r % 8 >= 1 for r in TOP_ROW_RASTER)
        assert all(r % 8 == 0 and r // 8 >= 1 for r in LEFT_COL_RASTER)
