"""Byte-exact scan decode→encode, positions, and handover resume."""

import numpy as np
import pytest

from repro.corpus.builder import corpus_jpeg, degenerate_jpegs
from repro.corpus.images import synthetic_photo
from repro.jpeg.parser import parse_jpeg
from repro.jpeg.scan_decode import decode_scan, extend
from repro.jpeg.scan_encode import ScanEncoder, encode_scan
from repro.jpeg.writer import encode_baseline_jpeg


def _parse_and_decode(data):
    img = parse_jpeg(data)
    decode_scan(img)
    return img


class TestExtend:
    @pytest.mark.parametrize("value,size,expected", [
        (0, 0, 0),
        (1, 1, 1),
        (0, 1, -1),
        (0b11, 2, 3),
        (0b00, 2, -3),
        (0b01, 2, -2),
        (1023, 10, 1023),
        (0, 10, -1023),
    ])
    def test_extend_matches_spec(self, value, size, expected):
        assert extend(value, size) == expected


class TestScanDecode:
    def test_coefficient_shapes(self, small_jpeg):
        img = _parse_and_decode(small_jpeg)
        luma = img.coefficients[0]
        assert luma.shape == (8, 8, 64)
        assert img.coefficients[1].shape == (4, 4, 64)

    def test_dc_accumulates_deltas(self, gray_jpeg):
        img = _parse_and_decode(gray_jpeg)
        # Smooth synthetic photos have slowly varying DC.
        dcs = img.coefficients[0][:, :, 0]
        assert int(np.abs(np.diff(dcs, axis=1)).max()) < 600

    def test_pad_bit_inferred(self, small_jpeg):
        img = _parse_and_decode(small_jpeg)
        assert img.pad_bit in (0, 1)

    def test_rst_count_recorded(self, rst_jpeg):
        img = _parse_and_decode(rst_jpeg)
        expected = (img.frame.mcu_count - 1) // img.restart_interval
        assert img.rst_count == expected

    def test_trailing_scan_bytes_rejected(self, small_jpeg):
        img = parse_jpeg(small_jpeg)
        img.scan_data = img.scan_data + b"\x55\x55"
        from repro.jpeg.errors import JpegError

        with pytest.raises(JpegError):
            decode_scan(img)


@pytest.mark.parametrize("kwargs", [
    dict(height=64, width=64, quality=85),
    dict(height=64, width=64, quality=85, subsampling="4:4:4"),
    dict(height=48, width=56, quality=80, grayscale=True),
    dict(height=64, width=80, quality=85, restart_interval=3),
    dict(height=40, width=40, quality=30),
    dict(height=40, width=40, quality=97),
    dict(height=33, width=47, quality=85),
], ids=["420", "444", "gray", "rst", "q30", "q97", "odd"])
def test_scan_reencodes_byte_exactly(kwargs):
    data = corpus_jpeg(seed=10, **kwargs)
    img = _parse_and_decode(data)
    scan, _ = encode_scan(img)
    assert scan == img.scan_data


def test_degenerate_images_roundtrip():
    for item in degenerate_jpegs(seed=2):
        img = _parse_and_decode(item.data)
        scan, _ = encode_scan(img)
        assert scan == img.scan_data, item.name


class TestPositions:
    def test_positions_cover_every_mcu_boundary(self, small_jpeg):
        img = _parse_and_decode(small_jpeg)
        _, positions = encode_scan(img, record_positions=True)
        assert len(positions) == img.frame.mcu_count + 1
        assert positions[0].mcu == 0
        assert positions[-1].mcu == img.frame.mcu_count

    def test_offsets_nondecreasing(self, rst_jpeg):
        img = _parse_and_decode(rst_jpeg)
        _, positions = encode_scan(img, record_positions=True)
        offsets = [p.byte_offset for p in positions]
        assert offsets == sorted(offsets)

    def test_final_position_near_scan_end(self, small_jpeg):
        img = _parse_and_decode(small_jpeg)
        scan, positions = encode_scan(img, record_positions=True)
        # Only final padding may follow the last recorded offset.
        assert len(scan) - positions[-1].byte_offset <= 1

    def test_rst_emitted_recorded_after_marker(self, rst_jpeg):
        img = _parse_and_decode(rst_jpeg)
        _, positions = encode_scan(img, record_positions=True)
        interval = img.restart_interval
        pos = positions[interval]  # boundary right after the first interval
        assert pos.rst_emitted == 1
        assert pos.dc_pred == (0,) * len(img.frame.components)


class TestHandoverResume:
    @pytest.mark.parametrize("fixture", ["small_jpeg", "rst_jpeg", "odd_jpeg"])
    def test_resume_from_any_boundary_matches_suffix(self, fixture, request):
        """Re-encoding from MCU m with the recorded handover reproduces the
        scan bytes from that position's byte floor onward — the property
        every thread segment and chunk depends on."""
        data = request.getfixturevalue(fixture)
        img = _parse_and_decode(data)
        scan, positions = encode_scan(img, record_positions=True)
        mcu_count = img.frame.mcu_count
        for mcu in {1, mcu_count // 2, mcu_count - 1}:
            pos = positions[mcu]
            encoder = ScanEncoder(
                img,
                start_mcu=mcu,
                dc_pred=pos.dc_pred,
                rst_emitted=pos.rst_emitted,
                partial_byte=pos.partial_byte,
                partial_bits=pos.partial_bits,
            )
            encoder.encode_to(mcu_count)
            suffix = encoder.finish()
            assert suffix == scan[pos.byte_offset :], f"mcu {mcu}"

    def test_segment_concatenation_reassembles_scan(self, small_jpeg):
        img = _parse_and_decode(small_jpeg)
        scan, positions = encode_scan(img, record_positions=True)
        mcu_count = img.frame.mcu_count
        cuts = [0, mcu_count // 3, 2 * mcu_count // 3, mcu_count]
        parts = []
        for i in range(len(cuts) - 1):
            pos = positions[cuts[i]]
            encoder = ScanEncoder(
                img, start_mcu=cuts[i], dc_pred=pos.dc_pred,
                rst_emitted=pos.rst_emitted,
                partial_byte=pos.partial_byte, partial_bits=pos.partial_bits,
            )
            encoder.encode_to(cuts[i + 1])
            last = i == len(cuts) - 2
            parts.append(encoder.finish() if last else encoder.emitted_bytes())
        assert b"".join(parts) == scan


class TestCorruptionBehaviour:
    def test_zero_run_tail_fails_decode_or_roundtrip(self, small_jpeg):
        """§A.3: zero runs at the end either decode (and may round-trip) or
        fail parsing — they must never round-trip to *different* bytes."""
        from repro.corpus.corruptions import zero_run_tail
        from repro.jpeg.errors import JpegError

        data = zero_run_tail(small_jpeg, run_length=64)
        try:
            img = _parse_and_decode(data)
        except JpegError:
            return
        scan, _ = encode_scan(img)
        reassembled = img.header_bytes + scan + img.trailer_bytes
        if reassembled != data:
            assert True  # mismatch detected → Deflate fallback in production
