"""FrameInfo/ScanInfo geometry math."""

import pytest

from repro.jpeg.components import Component, FrameInfo, ScanInfo
from repro.jpeg.errors import JpegError


def _frame(width, height, samplings):
    frame = FrameInfo(precision=8, height=height, width=width)
    for i, (h, v) in enumerate(samplings, start=1):
        frame.components.append(Component(i, h, v, 0))
    frame.finalise()
    return frame


class TestGeometry:
    def test_444_mcu_grid(self):
        frame = _frame(64, 48, [(1, 1), (1, 1), (1, 1)])
        assert (frame.mcus_x, frame.mcus_y) == (8, 6)
        assert frame.components[0].blocks_w == 8

    def test_420_mcu_grid(self):
        frame = _frame(64, 48, [(2, 2), (1, 1), (1, 1)])
        assert (frame.mcus_x, frame.mcus_y) == (4, 3)
        assert frame.components[0].blocks_w == 8
        assert frame.components[1].blocks_w == 4

    def test_422_mcu_grid(self):
        frame = _frame(64, 48, [(2, 1), (1, 1), (1, 1)])
        assert (frame.mcus_x, frame.mcus_y) == (4, 6)
        assert frame.components[0].blocks_h == 6

    def test_single_component_tight_grid(self):
        frame = _frame(65, 17, [(1, 1)])
        assert not frame.interleaved
        assert (frame.mcus_x, frame.mcus_y) == (9, 3)
        assert frame.total_blocks == 27

    def test_padding_rounds_up(self):
        frame = _frame(17, 17, [(2, 2), (1, 1), (1, 1)])
        assert frame.mcus_x == 2  # ceil(17/16)
        assert frame.components[0].blocks_w == 4  # padded to the MCU grid

    def test_blocks_per_mcu(self):
        frame = _frame(32, 32, [(2, 2), (1, 1), (1, 1)])
        assert frame.components[0].blocks_per_mcu == 4
        assert frame.components[1].blocks_per_mcu == 1

    def test_mcu_rows_is_segment_granularity(self):
        frame = _frame(64, 80, [(2, 2), (1, 1), (1, 1)])
        assert frame.mcu_rows() == frame.mcus_y == 5

    def test_empty_frame_rejected(self):
        frame = FrameInfo(precision=8, height=10, width=10)
        with pytest.raises(JpegError):
            frame.finalise()

    def test_zero_dimensions_rejected(self):
        frame = FrameInfo(precision=8, height=0, width=10)
        frame.components.append(Component(1, 1, 1, 0))
        with pytest.raises(JpegError):
            frame.finalise()


class TestScanInfo:
    def test_baseline_full_scan(self):
        assert ScanInfo([0, 1, 2]).is_baseline_full_scan()

    def test_partial_spectral_not_baseline(self):
        assert not ScanInfo([0], spectral_start=1).is_baseline_full_scan()
        assert not ScanInfo([0], spectral_end=5).is_baseline_full_scan()
        assert not ScanInfo([0], approx_low=1).is_baseline_full_scan()
