"""Progressive JPEG (SOF2): encode, parse, decode, and Lepton rejection."""

import numpy as np
import pytest

from repro.corpus.builder import corpus_jpeg
from repro.corpus.images import synthetic_photo
from repro.jpeg.errors import UnsupportedJpegError
from repro.jpeg.parser import parse_jpeg
from repro.jpeg.progressive import (
    DEFAULT_AC_BANDS,
    encode_progressive,
    encode_progressive_jpeg,
    parse_progressive,
)
from repro.jpeg.scan_decode import decode_scan


def _baseline_image(seed=5, **kwargs):
    data = corpus_jpeg(seed=seed, **kwargs)
    img = parse_jpeg(data)
    decode_scan(img)
    return img


class TestProgressiveRoundtrip:
    @pytest.mark.parametrize("kwargs", [
        dict(height=64, width=64),
        dict(height=48, width=56, grayscale=True),
        dict(height=37, width=61),
    ], ids=["colour", "gray", "odd"])
    def test_coefficients_survive(self, kwargs):
        img = _baseline_image(**kwargs)
        prog = encode_progressive(img.frame, img.quant_tables, img.coefficients)
        parsed = parse_progressive(prog)
        for got, want in zip(parsed.coefficients, img.coefficients):
            assert np.array_equal(got, want)

    @pytest.mark.parametrize("bands", [
        ((1, 63),),
        ((1, 5), (6, 63)),
        ((1, 2), (3, 9), (10, 63)),
    ])
    def test_any_band_script(self, bands):
        img = _baseline_image(height=64, width=64)
        prog = encode_progressive(img.frame, img.quant_tables,
                                  img.coefficients, ac_bands=bands)
        parsed = parse_progressive(prog)
        assert np.array_equal(parsed.coefficients[0], img.coefficients[0])

    def test_bare_payload_with_external_frame(self):
        img = _baseline_image(height=64, width=80)
        prog = encode_progressive(img.frame, img.quant_tables,
                                  img.coefficients, bare=True)
        assert len(prog) < len(
            encode_progressive(img.frame, img.quant_tables, img.coefficients)
        )
        parsed = parse_progressive(prog, frame=img.frame)
        for got, want in zip(parsed.coefficients, img.coefficients):
            assert np.array_equal(got, want)

    def test_scan_count(self):
        img = _baseline_image(height=64, width=64)
        prog = encode_progressive(img.frame, img.quant_tables, img.coefficients)
        parsed = parse_progressive(prog)
        # 1 DC scan + one per (component, band).
        expected = 1 + len(img.frame.components) * len(DEFAULT_AC_BANDS)
        assert len(parsed.scans) == expected
        assert parsed.scans[0].is_dc

    def test_eobrun_heavy_image(self):
        """A flat image is all EOB runs — the progressive win case."""
        from repro.corpus.images import flat_image
        from repro.jpeg.writer import encode_baseline_jpeg

        data = encode_baseline_jpeg(flat_image(64, 64), quality=85)
        img = parse_jpeg(data)
        decode_scan(img)
        prog = encode_progressive(img.frame, img.quant_tables, img.coefficients)
        parsed = parse_progressive(prog)
        assert np.array_equal(parsed.coefficients[0], img.coefficients[0])

    def test_progressive_order_groups_values(self):
        """On sparse high frequencies, the progressive (banded, EOBRUN)
        stream beats the baseline scan bytes — the §2 claim behind
        JPEGrescan and MozJPEG."""
        img = _baseline_image(seed=61, height=96, width=96)
        prog = encode_progressive(img.frame, img.quant_tables,
                                  img.coefficients, bare=True)
        # Compare entropy payloads: bare progressive vs the original scan.
        assert len(prog) < len(img.scan_data) + len(img.header_bytes)


class TestEobRunChunking:
    def test_long_eob_runs_split_into_legal_chunks(self):
        """EOBn carries at most run-category 14 (16384+extra blocks); a
        large empty image forces multiple chunks."""
        from repro.corpus.images import flat_image
        from repro.jpeg.writer import encode_baseline_jpeg

        data = encode_baseline_jpeg(flat_image(256, 256), quality=85)
        img = parse_jpeg(data)
        decode_scan(img)
        prog = encode_progressive(img.frame, img.quant_tables,
                                  img.coefficients, ac_bands=((1, 63),))
        parsed = parse_progressive(prog)
        assert np.array_equal(parsed.coefficients[0], img.coefficients[0])

    def test_mixed_sparse_dense_blocks(self):
        """Alternating dense and empty blocks stress EOB bookkeeping."""
        img = _baseline_image(height=64, width=64)
        coeffs = img.coefficients
        luma = coeffs[0]
        luma[::2, ::2, 1:] = 0  # empty out a checkerboard of blocks
        prog = encode_progressive(img.frame, img.quant_tables, coeffs)
        parsed = parse_progressive(prog)
        assert np.array_equal(parsed.coefficients[0], luma)


class TestPixelsToProgressive:
    def test_direct_encode(self):
        pixels = synthetic_photo(48, 64, seed=8)
        data = encode_progressive_jpeg(pixels, quality=85)
        parsed = parse_progressive(data)
        assert parsed.frame.width == 64
        assert parsed.frame.height == 48


class TestProgressiveFuzz:
    def test_header_byte_flips_fail_cleanly(self):
        """Same robustness bar as the baseline parser (§6.7's lesson)."""
        from repro.jpeg.errors import JpegError

        pixels = synthetic_photo(24, 24, seed=20)
        data = encode_progressive_jpeg(pixels, quality=85)
        import random

        rng = random.Random(2)
        for _ in range(80):
            mutated = bytearray(data)
            mutated[rng.randrange(len(mutated))] ^= 0xFF
            try:
                parse_progressive(bytes(mutated))
            except JpegError:
                pass

    def test_truncations_fail_cleanly(self):
        from repro.jpeg.errors import JpegError

        pixels = synthetic_photo(24, 24, seed=21)
        data = encode_progressive_jpeg(pixels, quality=85)
        for cut in range(0, len(data), 11):
            try:
                parse_progressive(data[:cut])
            except JpegError:
                pass


class TestProductionRejection:
    def test_real_progressive_rejected_by_baseline_parser(self):
        """Production Lepton skips progressive files (§6.2) — including
        genuine ones, not just marker-patched baselines."""
        pixels = synthetic_photo(32, 32, seed=9)
        data = encode_progressive_jpeg(pixels, quality=85)
        with pytest.raises(UnsupportedJpegError) as exc:
            parse_jpeg(data)
        assert exc.value.reason == "progressive"

    def test_lepton_classifies_real_progressive(self):
        from repro.core.errors import ExitCode
        from repro.core.lepton import compress, decompress

        pixels = synthetic_photo(32, 32, seed=10)
        data = encode_progressive_jpeg(pixels, quality=85)
        result = compress(data)
        assert result.exit_code is ExitCode.PROGRESSIVE
        assert decompress(result.payload) == data  # Deflate fallback

    def test_successive_approximation_rejected(self):
        img = _baseline_image(height=32, width=32)
        prog = bytearray(
            encode_progressive(img.frame, img.quant_tables, img.coefficients)
        )
        # Patch the first SOS's Ah/Al byte to claim successive approximation.
        idx = prog.find(bytes([0xFF, 0xDA]))
        length = (prog[idx + 2] << 8) | prog[idx + 3]
        prog[idx + 2 + length - 1] = 0x01  # Al = 1
        with pytest.raises(UnsupportedJpegError):
            parse_progressive(bytes(prog))
