"""Parser fuzzing: the §6.7 lesson (uncmpjpg's unvalidated tables).

A security researcher fuzzed open-source Lepton and found buffer overruns
in its JPEG-parsing library; the fix was bounds-checking every access.  In
Python overruns become exceptions for free, but the parser must still fail
*cleanly* (our error types only) and never hang, whatever bytes arrive.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.builder import corpus_jpeg
from repro.jpeg.errors import JpegError
from repro.jpeg.parser import parse_jpeg
from repro.jpeg.scan_decode import decode_scan


def _try_parse(data):
    try:
        img = parse_jpeg(data)
        decode_scan(img)
        return img
    except JpegError:
        return None
    except (OverflowError, MemoryError) as exc:  # resource bombs: fail test
        raise AssertionError(f"resource exhaustion on fuzz input: {exc}")


class TestHeaderMutations:
    @pytest.fixture(scope="class")
    def base(self):
        return corpus_jpeg(seed=500, height=48, width=48)

    def test_every_single_byte_flip_in_header_is_clean(self, base):
        """Exhaustively flip each header byte: parse either succeeds or
        raises a JpegError — never anything else."""
        img = parse_jpeg(base)
        header_len = img.scan_start
        for pos in range(2, header_len):
            mutated = bytearray(base)
            mutated[pos] ^= 0xFF
            _try_parse(bytes(mutated))

    def test_random_multibyte_mutations(self, base):
        rng = random.Random(1)
        for _ in range(120):
            mutated = bytearray(base)
            for _ in range(rng.randint(1, 6)):
                mutated[rng.randrange(len(mutated))] = rng.randrange(256)
            _try_parse(bytes(mutated))

    def test_random_truncations(self, base):
        for cut in range(0, len(base), 7):
            _try_parse(base[:cut])

    def test_segment_length_inflation(self, base):
        """Inflated segment lengths must hit the bounds checks (the actual
        uncmpjpg bug class)."""
        for marker in (b"\xFF\xC4", b"\xFF\xDB", b"\xFF\xC0"):
            idx = base.find(marker)
            if idx == -1:
                continue
            mutated = bytearray(base)
            mutated[idx + 2] = 0xFF
            mutated[idx + 3] = 0xFF
            _try_parse(bytes(mutated))

    def test_dht_value_count_inflation(self, base):
        """Claim many more Huffman values than the segment carries."""
        idx = base.find(b"\xFF\xC4")
        mutated = bytearray(base)
        for offset in range(5, 21):  # the 16 BITS counts
            mutated[idx + offset] = 0x40
        result = _try_parse(bytes(mutated))
        assert result is None  # must be rejected, not over-read


@settings(max_examples=120, deadline=None)
@given(st.binary(min_size=0, max_size=512))
def test_arbitrary_bytes_never_crash_parser(blob):
    _try_parse(blob)


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=0, max_size=256))
def test_soi_prefixed_bytes_never_crash_parser(blob):
    _try_parse(b"\xFF\xD8" + blob)
