"""BitWriter/BitReader: stuffing, padding, handover seeding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg.bitio import BitReader, BitWriter
from repro.jpeg.errors import JpegError, TruncatedJpegError


class TestBitWriter:
    def test_empty_writer_has_no_output(self):
        assert BitWriter().getvalue() == b""

    def test_single_byte_msb_first(self):
        w = BitWriter(stuff=False)
        w.write_bits(0b10110001, 8)
        assert w.getvalue() == bytes([0b10110001])

    def test_bits_accumulate_across_writes(self):
        w = BitWriter(stuff=False)
        w.write_bits(0b101, 3)
        w.write_bits(0b10001, 5)
        assert w.getvalue() == bytes([0b10110001])

    def test_partial_byte_not_emitted(self):
        w = BitWriter(stuff=False)
        w.write_bits(0b1111, 4)
        assert w.getvalue() == b""
        assert w.partial_state == (0b11110000, 4)

    def test_ff_byte_is_stuffed(self):
        w = BitWriter()
        w.write_bits(0xFF, 8)
        assert w.getvalue() == b"\xFF\x00"

    def test_stuffing_disabled(self):
        w = BitWriter(stuff=False)
        w.write_bits(0xFF, 8)
        assert w.getvalue() == b"\xFF"

    def test_pad_to_byte_zero(self):
        w = BitWriter(stuff=False)
        w.write_bits(0b11, 2)
        w.pad_to_byte(0)
        assert w.getvalue() == bytes([0b11000000])

    def test_pad_to_byte_one(self):
        w = BitWriter(stuff=False)
        w.write_bits(0b0, 1)
        w.pad_to_byte(1)
        assert w.getvalue() == bytes([0b01111111])

    def test_pad_on_aligned_writer_is_noop(self):
        w = BitWriter(stuff=False)
        w.write_bits(0xAB, 8)
        w.pad_to_byte(1)
        assert w.getvalue() == bytes([0xAB])

    def test_marker_requires_alignment(self):
        w = BitWriter()
        w.write_bit(1)
        with pytest.raises(JpegError):
            w.emit_marker(0xD0)

    def test_marker_bytes_not_stuffed(self):
        w = BitWriter()
        w.emit_marker(0xD3)
        assert w.getvalue() == b"\xFF\xD3"

    def test_handover_seeding_completes_previous_byte(self):
        # First writer stops mid-byte; second resumes with its partial state.
        first = BitWriter(stuff=False)
        first.write_bits(0b10110, 5)
        partial_byte, partial_bits = first.partial_state
        second = BitWriter(partial_byte=partial_byte, partial_bits=partial_bits,
                           stuff=False)
        second.write_bits(0b011, 3)
        assert second.getvalue() == bytes([0b10110011])

    def test_handover_seeded_ff_still_stuffed(self):
        first = BitWriter()
        first.write_bits(0b1111111, 7)
        pb, bits = first.partial_state
        second = BitWriter(partial_byte=pb, partial_bits=bits)
        second.write_bit(1)
        assert second.getvalue() == b"\xFF\x00"

    def test_invalid_partial_bits_rejected(self):
        with pytest.raises(ValueError):
            BitWriter(partial_bits=8)

    def test_bit_position_counts_partial_bits(self):
        w = BitWriter(stuff=False)
        w.write_bits(0b111, 3)
        assert w.bit_position == 3
        w.write_bits(0xFF, 8)
        assert w.bit_position == 11
        assert w.bytes_emitted == 1


class TestBitReader:
    def test_reads_msb_first(self):
        r = BitReader(bytes([0b10110001]))
        assert [r.read_bit() for _ in range(8)] == [1, 0, 1, 1, 0, 0, 0, 1]

    def test_read_bits_multibyte(self):
        r = BitReader(bytes([0xAB, 0xCD]))
        assert r.read_bits(16) == 0xABCD

    def test_stuffed_ff_consumed_as_data(self):
        r = BitReader(b"\xFF\x00\x80")
        assert r.read_bits(8) == 0xFF
        assert r.read_bits(8) == 0x80

    def test_marker_in_scan_raises(self):
        r = BitReader(b"\xFF\xD9")
        with pytest.raises(JpegError):
            r.read_bit()

    def test_truncated_raises(self):
        r = BitReader(b"")
        with pytest.raises(TruncatedJpegError):
            r.read_bit()

    def test_truncated_after_ff_raises(self):
        r = BitReader(b"\xFF")
        with pytest.raises(TruncatedJpegError):
            r.read_bit()

    def test_expect_rst_present(self):
        r = BitReader(b"\xFF\xD2\x00")
        assert r.expect_rst(2)
        assert r.byte_position == 2

    def test_expect_rst_index_mod_8(self):
        r = BitReader(b"\xFF\xD1")
        assert r.expect_rst(9)  # 9 & 7 == 1

    def test_expect_rst_absent_leaves_position(self):
        r = BitReader(b"\x12\x34")
        assert not r.expect_rst(0)
        assert r.byte_position == 0

    def test_expect_rst_requires_alignment(self):
        r = BitReader(b"\x80\xFF\xD0")
        r.read_bit()
        with pytest.raises(JpegError):
            r.expect_rst(0)

    def test_align_discards_pending_bits(self):
        r = BitReader(bytes([0b10000000, 0xAA]))
        r.read_bit()
        r.align()
        assert r.read_bits(8) == 0xAA


class TestDrain:
    def test_drain_returns_and_clears_buffer(self):
        w = BitWriter(stuff=False)
        w.write_bits(0xABCD, 16)
        assert w.drain() == b"\xAB\xCD"
        assert w.getvalue() == b""

    def test_bytes_emitted_counts_across_drains(self):
        w = BitWriter(stuff=False)
        w.write_bits(0xAB, 8)
        w.drain()
        w.write_bits(0xCD, 8)
        assert w.bytes_emitted == 2
        assert w.bit_position == 16

    def test_partial_byte_survives_drain(self):
        w = BitWriter(stuff=False)
        w.write_bits(0b10101, 5)
        assert w.drain() == b""
        w.write_bits(0b011, 3)
        assert w.drain() == bytes([0b10101011])

    def test_drained_pieces_concatenate_to_getvalue_equivalent(self):
        reference = BitWriter()
        windowed = BitWriter()
        pieces = []
        for i in range(200):
            reference.write_bits(i & 0x1FF, 9)
            windowed.write_bits(i & 0x1FF, 9)
            if i % 7 == 0:
                pieces.append(windowed.drain())
        reference.pad_to_byte(1)
        windowed.pad_to_byte(1)
        pieces.append(windowed.drain())
        assert b"".join(pieces) == reference.getvalue()


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=0, max_size=300))
def test_writer_reader_roundtrip_property(bits):
    """Any bit sequence written (stuffed) reads back identically."""
    w = BitWriter()
    for bit in bits:
        w.write_bit(bit)
    w.pad_to_byte(0)
    r = BitReader(w.getvalue())
    assert [r.read_bit() for _ in range(len(bits))] == bits


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 0xFFFF), st.integers(1, 16)),
                max_size=60))
def test_multi_width_roundtrip_property(chunks):
    """Mixed-width writes read back with the same widths."""
    w = BitWriter()
    for value, nbits in chunks:
        w.write_bits(value, nbits)
    w.pad_to_byte(1)
    r = BitReader(w.getvalue())
    for value, nbits in chunks:
        assert r.read_bits(nbits) == value & ((1 << nbits) - 1)
