"""The baseline JPEG encoder used to build the synthetic corpus."""

import numpy as np
import pytest

from repro.corpus.images import flat_image, synthetic_photo
from repro.jpeg.parser import parse_jpeg
from repro.jpeg.scan_decode import decode_scan
from repro.jpeg.writer import encode_baseline_jpeg, rgb_to_ycbcr


class TestStructure:
    def test_starts_with_soi_ends_with_eoi(self):
        data = encode_baseline_jpeg(flat_image(16, 16), quality=85)
        assert data[:2] == b"\xFF\xD8"
        assert data[-2:] == b"\xFF\xD9"

    def test_parses_back(self):
        data = encode_baseline_jpeg(synthetic_photo(24, 32, seed=1), quality=85)
        img = parse_jpeg(data)
        assert (img.frame.width, img.frame.height) == (32, 24)

    def test_dimensions_not_multiple_of_8(self):
        data = encode_baseline_jpeg(synthetic_photo(17, 23, seed=1), quality=85)
        img = parse_jpeg(data)
        decode_scan(img)
        assert img.frame.components[0].blocks_w == 3

    def test_one_pixel_image(self):
        data = encode_baseline_jpeg(flat_image(1, 1, value=77), quality=85)
        img = parse_jpeg(data)
        decode_scan(img)
        assert img.frame.mcu_count == 1

    def test_grayscale_has_one_component(self):
        data = encode_baseline_jpeg(
            synthetic_photo(16, 16, seed=1, grayscale=True), quality=85
        )
        assert len(parse_jpeg(data).frame.components) == 1

    def test_trailer_appended(self):
        data = encode_baseline_jpeg(flat_image(8, 8), trailer=b"EXTRA")
        assert data.endswith(b"EXTRA")

    def test_comment_embedded(self):
        data = encode_baseline_jpeg(flat_image(8, 8), comment=b"hello world")
        assert b"hello world" in data

    def test_restart_markers_present(self):
        data = encode_baseline_jpeg(
            synthetic_photo(64, 64, seed=1), quality=85, restart_interval=2
        )
        img = parse_jpeg(data)
        assert img.restart_interval == 2
        assert b"\xFF\xD0" in img.scan_data


class TestQualityBehaviour:
    def test_higher_quality_bigger_file(self):
        pixels = synthetic_photo(48, 48, seed=7)
        low = encode_baseline_jpeg(pixels, quality=40)
        high = encode_baseline_jpeg(pixels, quality=95)
        assert len(high) > len(low)

    def test_flat_image_is_tiny(self):
        flat = encode_baseline_jpeg(flat_image(64, 64), quality=85)
        busy = encode_baseline_jpeg(synthetic_photo(64, 64, seed=1), quality=85)
        assert len(flat) < len(busy)

    def test_420_smaller_than_444(self):
        pixels = synthetic_photo(64, 64, seed=9)
        sub420 = encode_baseline_jpeg(pixels, quality=85, subsampling="4:2:0")
        sub444 = encode_baseline_jpeg(pixels, quality=85, subsampling="4:4:4")
        assert len(sub420) < len(sub444)

    def test_decoded_pixels_close_to_source(self):
        """Lossy but sane: high-quality gray encode stays within a few
        levels of the source."""
        pixels = synthetic_photo(32, 32, seed=3, grayscale=True, noise=0.0)
        data = encode_baseline_jpeg(pixels, quality=95)
        img = parse_jpeg(data)
        decode_scan(img)
        from repro.jpeg.dct import idct2

        q = img.quant_tables[0].reshape(8, 8)
        blocks = img.coefficients[0].astype(np.float64).reshape(4, 4, 8, 8) * q
        recon = np.zeros((32, 32))
        for by in range(4):
            for bx in range(4):
                recon[by * 8 : by * 8 + 8, bx * 8 : bx * 8 + 8] = (
                    idct2(blocks[by, bx]) + 128.0
                )
        error = np.abs(recon - pixels.astype(np.float64))
        assert float(error.mean()) < 6.0


class TestValidation:
    def test_empty_image_rejected(self):
        with pytest.raises(ValueError):
            encode_baseline_jpeg(np.zeros((0, 5), dtype=np.uint8))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            encode_baseline_jpeg(np.zeros((4, 4, 2), dtype=np.uint8))

    def test_bad_subsampling_rejected(self):
        with pytest.raises(ValueError):
            encode_baseline_jpeg(flat_image(8, 8, grayscale=False), subsampling="4:1:1")


class TestColourConversion:
    def test_gray_rgb_maps_to_neutral_chroma(self):
        rgb = np.full((2, 2, 3), 100, dtype=np.uint8)
        ycc = rgb_to_ycbcr(rgb)
        assert np.allclose(ycc[..., 0], 100.0)
        assert np.allclose(ycc[..., 1:], 128.0)

    def test_primaries(self):
        red = np.zeros((1, 1, 3), dtype=np.uint8)
        red[..., 0] = 255
        ycc = rgb_to_ycbcr(red)
        assert ycc[0, 0, 0] == pytest.approx(76.245)
        assert ycc[0, 0, 2] > 200  # red is high-Cr
