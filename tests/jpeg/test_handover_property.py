"""Property test: handover resume from *every* MCU boundary (hypothesis).

The single most load-bearing invariant in the system: for any image our
writer can produce and any MCU boundary, re-encoding from the recorded
handover state reproduces the original scan bytes from that boundary's
byte floor onward.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus.images import synthetic_photo
from repro.jpeg.parser import parse_jpeg
from repro.jpeg.scan_decode import decode_scan
from repro.jpeg.scan_encode import ScanEncoder, encode_scan
from repro.jpeg.writer import encode_baseline_jpeg

_params = st.fixed_dictionaries({
    "height": st.integers(8, 48),
    "width": st.integers(8, 48),
    "seed": st.integers(0, 500),
    "quality": st.integers(40, 95),
    "grayscale": st.booleans(),
    "restart_interval": st.sampled_from([0, 1, 3]),
})


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_params, st.data())
def test_resume_from_random_boundary(params, data_strategy):
    pixels = synthetic_photo(params["height"], params["width"],
                             seed=params["seed"],
                             grayscale=params["grayscale"])
    data = encode_baseline_jpeg(pixels, quality=params["quality"],
                                restart_interval=params["restart_interval"])
    img = parse_jpeg(data)
    decode_scan(img)
    scan, positions = encode_scan(img, record_positions=True)
    assert scan == img.scan_data
    mcu_count = img.frame.mcu_count
    mcu = data_strategy.draw(st.integers(0, mcu_count - 1), label="resume_mcu")
    pos = positions[mcu]
    encoder = ScanEncoder(
        img,
        start_mcu=mcu,
        dc_pred=pos.dc_pred,
        rst_emitted=pos.rst_emitted,
        partial_byte=pos.partial_byte,
        partial_bits=pos.partial_bits,
    )
    encoder.encode_to(mcu_count)
    assert encoder.finish() == scan[pos.byte_offset :]
