"""The §5.7 wiring: a build with lint findings cannot qualify."""

import pytest

import repro.lint
from repro.corpus.builder import CorpusFile, corpus_jpeg
from repro.lint.engine import Finding
from repro.storage.qualification import qualify_build

pytestmark = pytest.mark.lint


def small_corpus():
    return [CorpusFile("a.jpg", corpus_jpeg(seed=7, height=32, width=32), "jpeg")]


def test_clean_tree_qualifies():
    report = qualify_build(small_corpus(), build_id="clean")
    assert report.lint_findings == 0
    assert report.qualified
    assert report.compressed == 1


def test_findings_block_qualification(monkeypatch):
    finding = Finding("D1", "src/repro/core/model.py", 10, 4,
                      "float literal 0.5 on the coded path")
    monkeypatch.setattr(repro.lint, "check_shipped_tree", lambda: [finding])
    report = qualify_build(small_corpus(), build_id="dirty")
    assert not report.qualified
    assert report.lint_findings == 1
    assert report.failures[0].name == "lint:D1"
    assert "model.py:10:4" in report.failures[0].reason
    # The gate short-circuits: no corpus work for a build that cannot ship.
    assert report.compressed == 0 and report.files_total == 0


def test_dataflow_findings_block_qualification_too(monkeypatch):
    """The gate refuses D7–D10 findings the same way it refuses D1–D6:
    check_shipped_tree runs the whole registry, so a blocking call on the
    serve path is as disqualifying as a float on the coded path."""
    finding = Finding("D7", "src/repro/serve/app.py", 368, 8,
                      "blocking call on the event loop: hashlib.sha256(...)")
    monkeypatch.setattr(repro.lint, "check_shipped_tree", lambda: [finding])
    report = qualify_build(small_corpus(), build_id="loopblock")
    assert not report.qualified
    assert report.failures[0].name == "lint:D7"
    assert report.compressed == 0


def test_gate_sees_the_full_rule_registry():
    from repro.lint import all_rules
    assert [r.id for r in all_rules()][-4:] == ["D7", "D8", "D9", "D10"]


def test_gate_can_be_bypassed_for_unit_tests(monkeypatch):
    finding = Finding("D2", "x.py", 1, 0, "ambient entropy")
    monkeypatch.setattr(repro.lint, "check_shipped_tree", lambda: [finding])
    report = qualify_build(small_corpus(), build_id="nogate", lint_gate=False)
    assert report.qualified and report.lint_findings == 0
