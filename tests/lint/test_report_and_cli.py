"""The reporters, the `python -m repro.lint` entry point, and `lepton lint`."""

import json
from pathlib import Path

import pytest

import repro.cli as cli
from repro.lint import (
    SCHEMA_VERSION,
    all_rules,
    main as lint_main,
    render_json,
    render_text,
    run_lint,
    to_json_dict,
)

pytestmark = pytest.mark.lint

FIXTURES = Path(__file__).parent / "fixtures"


def test_json_schema_fields():
    findings = run_lint([FIXTURES / "d1_trigger.py"])
    doc = to_json_dict(findings, files_scanned=1)
    assert doc["version"] == SCHEMA_VERSION == 2
    assert doc["tool"] == "repro.lint"
    assert doc["dataflow"] is True
    assert doc["files_scanned"] == 1
    assert doc["rules"] == [r.id for r in all_rules()]
    # Rule ids sort numerically (D2 before D10), not lexicographically.
    assert doc["rules"].index("D2") < doc["rules"].index("D10")
    assert doc["clean"] is False
    assert doc["counts"]["D1"] == len(doc["findings"]) > 0
    for entry in doc["findings"]:
        assert set(entry) == {"rule", "file", "line", "col", "message"}


def test_json_schema_clean():
    doc = to_json_dict([], files_scanned=3)
    assert doc["clean"] is True
    assert doc["counts"] == {}
    assert doc["findings"] == []


def test_text_report():
    findings = run_lint([FIXTURES / "d1_trigger.py"])
    text = render_text(findings, files_scanned=1)
    assert "D1" in text and "d1_trigger.py" in text
    assert render_text([], files_scanned=5) == "clean: 0 findings in 5 files"


def test_module_main_exit_codes(tmp_path, capsys):
    assert lint_main([str(FIXTURES / "d1_trigger.py")]) == 1
    assert lint_main([str(FIXTURES / "d1_clean.py")]) == 0
    assert lint_main([str(tmp_path / "missing.txt")]) == 2
    capsys.readouterr()


def test_module_main_json_output(capsys):
    status = lint_main(["--json", str(FIXTURES / "d2_trigger.py")])
    doc = json.loads(capsys.readouterr().out)
    assert status == 1
    assert doc["version"] == 2 and doc["counts"]["D2"] >= 2


def test_lepton_lint_subcommand(capsys):
    assert cli.main(["lint", str(FIXTURES / "d4_trigger.py")]) == 1
    assert "D4" in capsys.readouterr().out
    assert cli.main(["lint", str(FIXTURES / "d4_clean.py")]) == 0
    capsys.readouterr()


def test_lepton_lint_json(capsys):
    assert cli.main(["lint", "--json", str(FIXTURES / "d5_trigger.py")]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["tool"] == "repro.lint" and doc["counts"]["D5"] >= 2


def test_reports_are_byte_identical_across_runs():
    """Two runs over the same tree render the same bytes — the ISSUE 7
    determinism contract for both reporters."""
    files = len(list(FIXTURES.glob("*.py")))
    first = run_lint([FIXTURES])
    second = run_lint([FIXTURES])
    assert first, "fixture corpus should produce findings"
    assert render_json(first, files) == render_json(second, files)
    assert render_text(first, files) == render_text(second, files)


def test_reporters_sort_defensively():
    """Reporters order findings themselves, whatever order they arrive in."""
    findings = run_lint([FIXTURES])
    shuffled = list(reversed(findings))
    files = len(list(FIXTURES.glob("*.py")))
    assert render_json(shuffled, files) == render_json(findings, files)
    assert render_text(shuffled, files) == render_text(findings, files)
