"""Tier-1 gate: the shipped tree must be lint-clean (ISSUE: §5.4 analogue).

A build whose own sources violate D1–D5 cannot qualify; this test is the
CI face of the same check `storage.qualification.qualify_build` applies.
"""

from pathlib import Path

import pytest

import repro
from repro.lint import check_shipped_tree, run_lint

pytestmark = pytest.mark.lint

PACKAGE_ROOT = Path(repro.__file__).resolve().parent


def test_shipped_tree_is_clean():
    findings = run_lint([PACKAGE_ROOT])
    assert findings == [], "\n".join(
        f"{f.location()}: {f.rule} {f.message}" for f in findings
    )


def test_check_shipped_tree_is_clean_and_memoised():
    assert check_shipped_tree() == []
    # Second call must serve the memoised copy (same contents, cheap).
    assert check_shipped_tree() == []
