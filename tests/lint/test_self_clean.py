"""Tier-1 gate: the shipped tree must be lint-clean (ISSUE: §5.4 analogue).

A build whose own sources violate D1–D5 cannot qualify; this test is the
CI face of the same check `storage.qualification.qualify_build` applies.
"""

from pathlib import Path

import pytest

import repro
from repro.lint import all_rules, check_shipped_tree, default_config, run_lint

pytestmark = pytest.mark.lint

PACKAGE_ROOT = Path(repro.__file__).resolve().parent


def test_shipped_tree_is_clean():
    findings = run_lint([PACKAGE_ROOT])
    assert findings == [], "\n".join(
        f"{f.location()}: {f.rule} {f.message}" for f in findings
    )


def test_check_shipped_tree_is_clean_and_memoised():
    assert check_shipped_tree() == []
    # Second call must serve the memoised copy (same contents, cheap).
    assert check_shipped_tree() == []


def test_registry_holds_all_ten_rules_in_numeric_order():
    assert [rule.id for rule in all_rules()] == [
        "D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9", "D10",
    ]


def test_dataflow_scopes_cover_serve_and_the_linter_itself():
    """The self-clean gate only means something if the expanded scopes
    actually bind: the serve path gets all four dataflow rules, and the
    linter's own sources are under D4/D5/D9/D10 (so the analysis code is
    held to the invariants it enforces)."""
    config = default_config()
    for rule_id in ("D7", "D8", "D9", "D10"):
        assert config.in_scope(rule_id, "repro.serve.app"), rule_id
    assert config.in_scope("D7", "repro.storage.blockstore")  # callee summaries
    for rule_id in ("D4", "D5", "D9", "D10"):
        assert config.in_scope(rule_id, "repro.lint.engine"), rule_id
