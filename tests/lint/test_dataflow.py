"""Dataflow-rule behaviour a syntactic linter provably cannot reproduce.

Every case here hinges on *paths*: a verify call on one branch does not
sanitize the other, a lock released before an `await` is fine while the
same pair of lines inside the critical section is not, and a resource
closed on the happy path still leaks on the early return.  Grep sees the
same tokens in the clean and the trigger variant of each pair.
"""

import textwrap

import pytest

from repro.lint import lint_source
from repro.lint.cfg import build_cfg, function_defs
from repro.lint.dataflow import exit_state, solve

pytestmark = pytest.mark.lint


def findings_for(rule: str, source: str):
    return [f for f in lint_source(textwrap.dedent(source)) if f.rule == rule]


# --------------------------------------------------------------------------
# D8: verified-byte taint
# --------------------------------------------------------------------------

def test_verification_on_one_branch_does_not_sanitize_the_other():
    """The core taint property: both sources call ``verify`` and both call
    ``sendall``; only the one with an unverified path is flagged."""
    tainted = findings_for("D8", """
        def reply(store, sock, key, fast_path):
            blob = store.entries[key].payload
            if fast_path:
                blob = blob + b"trailer"
            else:
                blob = verify_digest(blob)
            sock.sendall(blob)
    """)
    assert len(tainted) == 1
    assert "verif" in tainted[0].message

    clean = findings_for("D8", """
        def reply(store, sock, key, fast_path):
            blob = store.entries[key].payload
            if fast_path:
                blob = verify_fast(blob)
            else:
                blob = verify_digest(blob)
            sock.sendall(blob)
    """)
    assert clean == []


def test_taint_survives_propagating_transforms():
    findings = findings_for("D8", """
        def relay(record, sock):
            body = bytes(record.payload)
            framed = b"".join([b"hdr", memoryview(body)])
            sock.write(framed)
    """)
    assert len(findings) == 1


def test_derived_metadata_is_not_tainted():
    # len() and str() launder: the byte *contents* never reach the socket.
    assert findings_for("D8", """
        def announce(record, sock):
            size = len(record.payload)
            sock.write(str(size).encode())
    """) == []


def test_taint_through_loop_iteration():
    findings = findings_for("D8", """
        def stream(records, sock):
            for record in records:
                chunk = record.payload
                sock.sendall(chunk)
    """)
    assert len(findings) == 1


# --------------------------------------------------------------------------
# D9: no await while a threading.Lock is held
# --------------------------------------------------------------------------

D9_HELD = """
    import asyncio

    async def rotate(self):
        self._state_lock.acquire()
        await asyncio.sleep(0)
        self._state_lock.release()
"""

D9_RELEASED = """
    import asyncio

    async def rotate(self):
        self._state_lock.acquire()
        self._state_lock.release()
        await asyncio.sleep(0)
"""


def test_await_between_acquire_and_release_fires():
    findings = findings_for("D9", D9_HELD)
    assert len(findings) == 1
    assert "_state_lock" in findings[0].message


def test_same_calls_released_before_await_are_clean():
    # Identical call set, different order — only the CFG tells them apart.
    assert findings_for("D9", D9_RELEASED) == []


def test_lock_order_inversion_across_functions():
    findings = findings_for("D9", """
        import threading

        class Registry:
            def forward(self):
                with self.lock_names:
                    with self.lock_blocks:
                        self.sync()

            def backward(self):
                with self.lock_blocks:
                    with self.lock_names:
                        self.sync()
    """)
    inversions = [f for f in findings if "inversion" in f.message.lower()
                  or "order" in f.message.lower()]
    assert len(inversions) == 1
    # Reported at the lexically later of the two sites.
    assert inversions[0].line > 8


def test_await_while_locked_only_on_the_locked_path():
    findings = findings_for("D9", """
        import asyncio

        async def flush(self, urgent):
            if urgent:
                with self._queue_lock:
                    self.drain()
            await asyncio.sleep(0)
    """)
    assert findings == []


# --------------------------------------------------------------------------
# D10: resource lifecycle
# --------------------------------------------------------------------------

def test_resource_leaked_on_early_return_only():
    findings = findings_for("D10", """
        def head(path, want):
            handle = open(path, "rb")
            if not want:
                return b""
            data = handle.read(want)
            handle.close()
            return data
    """)
    assert len(findings) == 1
    assert "handle" in findings[0].message


def test_try_finally_release_covers_every_path():
    assert findings_for("D10", """
        def head(path, want):
            handle = open(path, "rb")
            try:
                if not want:
                    return b""
                return handle.read(want)
            finally:
                handle.close()
    """) == []


def test_ownership_transfer_via_return_is_not_a_leak():
    assert findings_for("D10", """
        def open_container(path):
            handle = open(path, "rb")
            return handle
    """) == []


# --------------------------------------------------------------------------
# D7: blocking work reached through the call graph
# --------------------------------------------------------------------------

def test_transitive_blocking_call_reported_with_chain():
    findings = findings_for("D7", """
        import zlib

        def inflate(blob):
            return zlib.decompress(blob)

        def unframe(blob):
            return inflate(blob[4:])

        async def handle(blob):
            return unframe(blob)
    """)
    assert len(findings) == 1
    assert "unframe" in findings[0].message
    assert "zlib.decompress" in findings[0].message


def test_executor_dispatch_is_the_sanctioned_escape():
    assert findings_for("D7", """
        import asyncio
        import zlib

        def inflate(blob):
            return zlib.decompress(blob)

        async def handle(blob):
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(None, inflate, blob)
    """) == []


def test_calling_a_generator_is_lazy_not_blocking():
    assert findings_for("D7", """
        import zlib

        def frames(blob):
            while blob:
                yield zlib.decompress(blob[:64])
                blob = blob[64:]

        async def handle(blob):
            return frames(blob)
    """) == []


# --------------------------------------------------------------------------
# The solver itself
# --------------------------------------------------------------------------

def _cfg_of(source):
    tree = __import__("ast").parse(textwrap.dedent(source))
    return build_cfg(next(iter(function_defs(tree))))


def test_solver_reaches_fixpoint_on_loops():
    import ast

    cfg = _cfg_of("""
        def f(xs):
            x = 1
            while x:
                y = 2
            return x
    """)
    calls = {"n": 0}

    def transfer(node, state):
        calls["n"] += 1
        assert calls["n"] < 200, "solver failed to terminate"
        out = set(state)
        if node.stmt is not None and isinstance(node.stmt, ast.Assign):
            out.add(node.stmt.targets[0].id)
        return frozenset(out)

    states = solve(cfg, transfer, frozenset())
    # The loop body's facts flow back around: at the exit both names are
    # possible, and the iteration terminated well under the guard.
    assert exit_state(cfg, states) == frozenset({"x", "y"})


def test_exit_state_is_none_when_exit_unreachable():
    cfg = _cfg_of("""
        def f(q):
            while True:
                q.pump()
    """)
    states = solve(cfg, lambda node, state: state, frozenset())
    assert exit_state(cfg, states) is None
