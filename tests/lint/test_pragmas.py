"""Pragma parser unit tests (line, file, `all`, prose tails, the window)."""

import pytest

from repro.lint import lint_source, parse_pragmas

pytestmark = pytest.mark.lint


def test_line_pragma_with_prose_tail():
    pragmas = parse_pragmas("x = 0.5  # lint: disable=D1 - telemetry only\n")
    assert pragmas.suppresses("D1", 1)
    assert not pragmas.suppresses("D2", 1)
    assert not pragmas.suppresses("D1", 2)


def test_multiple_ids_one_pragma():
    pragmas = parse_pragmas("y = f()  # lint: disable=D1,D5\n")
    assert pragmas.suppresses("D1", 1)
    assert pragmas.suppresses("D5", 1)
    assert not pragmas.suppresses("D2", 1)


def test_disable_all():
    pragmas = parse_pragmas("z = g()  # lint: disable=all\n")
    for rule in ("D1", "D2", "D3", "D4", "D5"):
        assert pragmas.suppresses(rule, 1)


def test_file_pragma_inside_window():
    source = '"""doc"""\n# lint: disable-file=D2\nimport time\n'
    pragmas = parse_pragmas(source)
    assert pragmas.suppresses("D2", 3)
    assert pragmas.suppresses("D2", 999)


def test_file_pragma_outside_window_is_ignored():
    source = "\n" * 12 + "# lint: disable-file=D2\n"
    assert not parse_pragmas(source).suppresses("D2", 14)


def test_pragma_suppression_end_to_end():
    noisy = "x = time.time()\n"
    quiet = "x = time.time()  # lint: disable=D2 - fixture\n"
    prelude = "import time\n"
    assert {f.rule for f in lint_source(prelude + noisy)} == {"D2"}
    assert lint_source(prelude + quiet) == []
