"""Regression tests for the real D2–D5 violations the first lint run of the
shipped tree surfaced (the D1 fixed-point regressions live next to the
model tests in tests/core/test_model.py).

Each test pins the *behavioural* fix, so a revert re-fails here even
before the static pass catches the pattern again.
"""

import signal
import threading

import pytest

import repro.cli as cli
import repro.core.lepton as lepton_mod
from repro.core.errors import ExitCode, FormatError
from repro.core.lepton import LeptonConfig, compress
from repro.corpus.builder import corpus_jpeg
from repro.obs import EXIT_STATUS, SIGNAL_EXIT_CODES, exit_code_for_signal
from repro.storage.backfill import BackfillWorker, Metaserver, UserFile
from repro.storage.blockserver import Job
from repro.storage.safety import ShutoffSwitch


class TestD4JobIdAllocator:
    """blockserver: job ids now come from a lock-guarded allocator."""

    def test_concurrent_jobs_get_unique_ids(self):
        ids = []
        ids_lock = threading.Lock()

        def spawn():
            batch = [Job("other", 1.0, 1, 0.0).job_id for _ in range(200)]
            with ids_lock:
                ids.extend(batch)

        threads = [threading.Thread(target=spawn) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(ids) == len(set(ids)) == 1600

    def test_ids_monotone_within_a_thread(self):
        first = Job("other", 1.0, 1, 0.0).job_id
        second = Job("other", 1.0, 1, 0.0).job_id
        assert second > first


class TestExitCodeProduction:
    """§6.2: the operational codes are actually produced, not just pinned."""

    def test_signal_map_covers_the_fleet_deaths(self):
        assert SIGNAL_EXIT_CODES[int(signal.SIGTERM)] is ExitCode.SERVER_SHUTDOWN
        assert SIGNAL_EXIT_CODES[int(signal.SIGABRT)] is ExitCode.ABORT_SIGNAL
        assert SIGNAL_EXIT_CODES[int(signal.SIGKILL)] is ExitCode.OOM_KILL
        assert SIGNAL_EXIT_CODES[int(signal.SIGINT)] is ExitCode.OPERATOR_INTERRUPT

    def test_unknown_signal_counts_as_abort(self):
        assert exit_code_for_signal(int(signal.SIGSEGV)) is ExitCode.ABORT_SIGNAL

    def test_cli_maps_ctrl_c_to_operator_interrupt(self, monkeypatch, capsys):
        def interrupted(args, config):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_dispatch", interrupted)
        status = cli.main(["verify", "-"])
        capsys.readouterr()
        assert status == EXIT_STATUS[ExitCode.OPERATOR_INTERRUPT] == 15

    def test_cli_maps_memory_error_to_oom_kill(self, monkeypatch, capsys):
        def oom(args, config):
            raise MemoryError

        monkeypatch.setattr(cli, "_dispatch", oom)
        status = cli.main(["verify", "-"])
        capsys.readouterr()
        assert status == EXIT_STATUS[ExitCode.OOM_KILL] == 14

    def test_internal_invariant_breakage_is_impossible_bucket(self, monkeypatch):
        def broken_encoder(*args, **kwargs):
            raise FormatError("container writer invariant violated")

        monkeypatch.setattr(lepton_mod, "encode_jpeg", broken_encoder)
        result = compress(corpus_jpeg(seed=3, height=32, width=32))
        assert result.exit_code is ExitCode.IMPOSSIBLE
        assert "FormatError" in result.detail
        assert result.format == "deflate"  # the fallback still stores bytes


class TestBackfillShutoffDrain:
    """§5.7: a worker seeing the kill file drains instead of converting."""

    def make_worker(self, shutoff):
        users = {1: [UserFile("cat.jpg", corpus_jpeg(seed=5, height=32, width=32))]}
        meta = Metaserver(users, n_shards=1)
        uploads = {}
        worker = BackfillWorker(meta, uploads.__setitem__, LeptonConfig(),
                                shutoff=shutoff)
        return worker, uploads

    def test_engaged_shutoff_drains_the_shard(self, tmp_path):
        shutoff = ShutoffSwitch(directory=str(tmp_path))
        shutoff.engage()
        worker, uploads = self.make_worker(shutoff)
        worker.process_shard(0)
        assert uploads == {}
        assert worker.stats.chunks_processed == 0
        assert worker.stats.exit_codes == {ExitCode.SERVER_SHUTDOWN: 1}

    def test_released_shutoff_processes_normally(self, tmp_path):
        shutoff = ShutoffSwitch(directory=str(tmp_path))
        worker, uploads = self.make_worker(shutoff)
        worker.process_shard(0)
        assert worker.stats.chunks_processed == 1
        assert len(uploads) == 1
        assert ExitCode.SERVER_SHUTDOWN not in worker.stats.exit_codes
