"""Regression tests for the real violations the first lint runs of the
shipped tree surfaced: the D2–D5 batch from the original rule set (the D1
fixed-point regressions live next to the model tests in
tests/core/test_model.py), and the D7/D4 batch the dataflow pass found —
a sha256 of the whole upload body computed on the event loop in
`serve.app`, and two unlocked module-global writes inside the linter
itself.

Each test pins the *behavioural* fix, so a revert re-fails here even
before the static pass catches the pattern again.
"""

import signal
import threading
from pathlib import Path

import pytest

import repro.cli as cli
import repro.core.lepton as lepton_mod
from repro.core.errors import ExitCode, FormatError
from repro.core.lepton import LeptonConfig, compress
from repro.corpus.builder import corpus_jpeg
from repro.obs import EXIT_STATUS, SIGNAL_EXIT_CODES, exit_code_for_signal
from repro.storage.backfill import BackfillWorker, Metaserver, UserFile
from repro.storage.blockserver import Job
from repro.storage.safety import ShutoffSwitch


class TestD4JobIdAllocator:
    """blockserver: job ids now come from a lock-guarded allocator."""

    def test_concurrent_jobs_get_unique_ids(self):
        ids = []
        ids_lock = threading.Lock()

        def spawn():
            batch = [Job("other", 1.0, 1, 0.0).job_id for _ in range(200)]
            with ids_lock:
                ids.extend(batch)

        threads = [threading.Thread(target=spawn) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(ids) == len(set(ids)) == 1600

    def test_ids_monotone_within_a_thread(self):
        first = Job("other", 1.0, 1, 0.0).job_id
        second = Job("other", 1.0, 1, 0.0).job_id
        assert second > first


class TestExitCodeProduction:
    """§6.2: the operational codes are actually produced, not just pinned."""

    def test_signal_map_covers_the_fleet_deaths(self):
        assert SIGNAL_EXIT_CODES[int(signal.SIGTERM)] is ExitCode.SERVER_SHUTDOWN
        assert SIGNAL_EXIT_CODES[int(signal.SIGABRT)] is ExitCode.ABORT_SIGNAL
        assert SIGNAL_EXIT_CODES[int(signal.SIGKILL)] is ExitCode.OOM_KILL
        assert SIGNAL_EXIT_CODES[int(signal.SIGINT)] is ExitCode.OPERATOR_INTERRUPT

    def test_unknown_signal_counts_as_abort(self):
        assert exit_code_for_signal(int(signal.SIGSEGV)) is ExitCode.ABORT_SIGNAL

    def test_cli_maps_ctrl_c_to_operator_interrupt(self, monkeypatch, capsys):
        def interrupted(args, config):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_dispatch", interrupted)
        status = cli.main(["verify", "-"])
        capsys.readouterr()
        assert status == EXIT_STATUS[ExitCode.OPERATOR_INTERRUPT] == 15

    def test_cli_maps_memory_error_to_oom_kill(self, monkeypatch, capsys):
        def oom(args, config):
            raise MemoryError

        monkeypatch.setattr(cli, "_dispatch", oom)
        status = cli.main(["verify", "-"])
        capsys.readouterr()
        assert status == EXIT_STATUS[ExitCode.OOM_KILL] == 14

    def test_internal_invariant_breakage_is_impossible_bucket(self, monkeypatch):
        def broken_encoder(*args, **kwargs):
            raise FormatError("container writer invariant violated")

        monkeypatch.setattr(lepton_mod, "encode_jpeg", broken_encoder)
        result = compress(corpus_jpeg(seed=3, height=32, width=32))
        assert result.exit_code is ExitCode.IMPOSSIBLE
        assert "FormatError" in result.detail
        assert result.format == "deflate"  # the fallback still stores bytes


class TestBackfillShutoffDrain:
    """§5.7: a worker seeing the kill file drains instead of converting."""

    def make_worker(self, shutoff):
        users = {1: [UserFile("cat.jpg", corpus_jpeg(seed=5, height=32, width=32))]}
        meta = Metaserver(users, n_shards=1)
        uploads = {}
        worker = BackfillWorker(meta, uploads.__setitem__, LeptonConfig(),
                                shutoff=shutoff)
        return worker, uploads

    def test_engaged_shutoff_drains_the_shard(self, tmp_path):
        shutoff = ShutoffSwitch(directory=str(tmp_path))
        shutoff.engage()
        worker, uploads = self.make_worker(shutoff)
        worker.process_shard(0)
        assert uploads == {}
        assert worker.stats.chunks_processed == 0
        assert worker.stats.exit_codes == {ExitCode.SERVER_SHUTDOWN: 1}

    def test_released_shutoff_processes_normally(self, tmp_path):
        shutoff = ShutoffSwitch(directory=str(tmp_path))
        worker, uploads = self.make_worker(shutoff)
        worker.process_shard(0)
        assert worker.stats.chunks_processed == 1
        assert len(uploads) == 1
        assert ExitCode.SERVER_SHUTDOWN not in worker.stats.exit_codes


class TestD7ContentHashOffTheEventLoop:
    """serve.app: hashing the whole PUT body ran inline in the handler —
    CPU time proportional to the upload, serialising every connection.
    The dataflow pass (D7) flagged it; the digest now runs on the
    executor next to the codec."""

    def app_source(self):
        import repro.serve.app as app_mod
        return Path(app_mod.__file__).read_text()

    def test_shipped_handler_has_no_blocking_findings(self):
        from repro.lint import run_lint
        import repro.serve.app as app_mod
        findings = run_lint([Path(app_mod.__file__)])
        assert [f for f in findings if f.rule == "D7"] == []

    def test_reverting_to_an_inline_digest_refails_d7(self):
        """Put the old line back and the rule must fire again — proof the
        pass actually guards this site rather than happening to be quiet."""
        from repro.lint import lint_source
        source = self.app_source()
        fixed = ("file_id = await loop.run_in_executor(\n"
                 "            None, lambda: hashlib.sha256(data).hexdigest())")
        assert fixed in source
        reverted = source.replace(
            fixed, "file_id = hashlib.sha256(data).hexdigest()")
        findings = [f for f in lint_source(reverted, module="repro.serve.app",
                                           in_package=True)
                    if f.rule == "D7"]
        assert any("sha256" in f.message for f in findings)

    def test_put_still_content_addresses_by_sha256(self):
        """The behavioural half: moving the digest onto the executor must
        not have changed *what* it computes — ids are still the body's
        sha256, so dedupe and GET-by-id survive the refactor."""
        import asyncio
        import hashlib

        from repro.serve.app import LeptonServer, ServeConfig
        from repro.serve.client import ServeClient
        from repro.corpus.builder import corpus_jpeg

        body = corpus_jpeg(seed=11, height=32, width=32)

        async def scenario():
            server = LeptonServer(ServeConfig(chunk_size=4096))
            await server.start()
            try:
                async with ServeClient(server.config.host,
                                       server.port) as client:
                    put = await client.put_file(body)
                    assert put.status == 201, put.body
                    return put.json()["id"]
            finally:
                await server.drain()

        assert asyncio.run(scenario()) == hashlib.sha256(body).hexdigest()


class TestD4LinterGlobalsAreLockGuarded:
    """repro.lint: the rule-set digest memo and the rule registry are
    module-level shared state; the first self-run of D4 over the linter's
    own tree flagged both writes as unlocked."""

    def test_ruleset_version_is_stable_under_concurrency(self):
        import repro.lint.cache as cache_mod
        with cache_mod._ruleset_lock:
            cache_mod._ruleset_memo.clear()
        out = []
        out_lock = threading.Lock()

        def probe():
            version = cache_mod.ruleset_version()
            with out_lock:
                out.append(version)

        threads = [threading.Thread(target=probe) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(out)) == 1 and len(out[0]) == 16

    def test_linter_tree_passes_its_own_lock_rule(self):
        import repro.lint as lint_pkg
        from repro.lint import run_lint
        findings = run_lint([Path(lint_pkg.__file__).parent])
        assert [f for f in findings if f.rule in ("D4", "D9", "D10")] == []
