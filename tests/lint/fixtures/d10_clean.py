"""D10 clean twin: every path releases — `with`, try/finally, or
explicit ownership transfer to the caller."""


def read_manifest_d10c(path):
    with open(path, "rb") as handle:
        return handle.read()


def copy_payload_d10c(path, sink):
    handle = open(path, "rb")
    try:
        sink.extend(handle.read())
    finally:
        handle.close()


def open_for_caller_d10c(path):
    handle = open(path, "rb")
    return handle                # the caller owns (and closes) it now
