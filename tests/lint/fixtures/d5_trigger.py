"""D5 fixture: a leaked span and a bare except."""

from repro.obs import trace_span

def convert(data):
    span = trace_span("fixture.convert", size=len(data))
    try:
        return data[::-1]
    except:
        return None
