"""D6 fixture: a sanctioned off-pipeline loop, suppressed line by line."""

from repro.core.bool_coder import BoolEncoder
from repro.core.coefcoder import SegmentCodec


def code_segment_for_experiment(img, config, start, end):
    codec = SegmentCodec(img.frame, img.coefficients, config)  # lint: disable=D6 - throwaway experiment
    encoder = BoolEncoder()  # lint: disable=D6 - throwaway experiment
    codec.encode(encoder, start, end)
    return encoder.finish()
