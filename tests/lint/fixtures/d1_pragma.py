"""D1 fixture: the same violations as d1_trigger, each suppressed."""

import math

SCALE = 0.75  # lint: disable=D1 - reporting only, never coded

def probability(count, total):
    ratio = count / total  # lint: disable=D1 - reporting only
    return float(ratio) * math.log(total)  # lint: disable=D1
