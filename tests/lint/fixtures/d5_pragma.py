"""D5 fixture: the d5_trigger violations, suppressed per line."""

from repro.obs import trace_span

def convert(data):
    span = trace_span("fixture.convert")  # lint: disable=D5 - closed manually below
    try:
        return data[::-1]
    except:  # lint: disable=D5 - fixture
        span.finish() if hasattr(span, "finish") else None
        return None
