"""D5 fixture: context-managed span, typed exception handler."""

from repro.obs import trace_span

def convert(data):
    with trace_span("fixture.convert", size=len(data)):
        try:
            return data[::-1]
        except ValueError:
            return None
