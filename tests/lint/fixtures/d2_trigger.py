"""D2 fixture: ambient entropy in every form the rule knows about."""

import os
import random
import time

def sample_delay(candidates):
    started = time.time()
    token = os.urandom(8)
    for item in {1, 2, 3}:
        token += bytes([item])
    return random.choice(candidates), started, token
