"""D1 fixture: every statement here breaks the no-float rule."""

import math

SCALE = 0.75

def probability(count, total):
    ratio = count / total
    return float(ratio) * math.log(total)
