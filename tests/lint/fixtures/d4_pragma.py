"""D4 fixture: unguarded writes, each suppressed per line."""

import itertools

_JOBS = {}
_IDS = itertools.count()

def record(key, value):
    _JOBS[key] = value  # lint: disable=D4 - single-threaded test helper
    return next(_IDS)  # lint: disable=D4 - single-threaded test helper
