"""D2 fixture: the whole file opts out via a file-level pragma."""
# lint: disable-file=D2 - fixture exercising whole-file suppression

import os
import random
import time

def sample_delay(candidates):
    started = time.time()
    token = os.urandom(8)
    return random.choice(candidates), started, token
