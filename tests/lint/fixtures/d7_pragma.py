"""D7 pragma twin: a deliberate blocking call, acknowledged in place
(e.g. a startup-only path before the loop serves traffic)."""

import time


async def warm_caches_d7p() -> None:
    time.sleep(1)  # lint: disable=D7
