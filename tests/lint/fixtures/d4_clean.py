"""D4 fixture: the same mutations, all under the module lock."""

import itertools
import threading

_JOBS = {}
_IDS = itertools.count()
_LOCK = threading.Lock()

def record(key, value):
    with _LOCK:
        _JOBS[key] = value
        return next(_IDS)
