"""D4 fixture: module-level shared state mutated without a lock."""

import itertools

_JOBS = {}
_IDS = itertools.count()
_TOTAL = 0

def record(key, value):
    global _TOTAL
    _JOBS[key] = value
    _TOTAL += 1
    return next(_IDS)
