"""D10 pragma twin: a deliberately process-lifetime handle."""


def open_log_d10p(path):
    handle = open(path, "ab")  # lint: disable=D10
    return handle.fileno()
