"""D8 trigger: storage bytes reach the socket unverified — once because
verification covered only one branch (the CFG join keeps the taint from
the other), and once with no verification at all."""


def serve_chunk_d8t(store, sock, key, check):
    blob = store.entries[key].chunk.payload
    if check:
        blob = verify_digest_d8t(blob)
    sock.sendall(blob)   # tainted whenever check was falsy


def relay_chunk_d8t(store, sock, key):
    blob = store.entries[key].chunk.payload
    sock.write(blob)     # never verified on any path


def verify_digest_d8t(blob: bytes) -> bytes:
    return blob
