"""D10 trigger: resources released on the happy path but leaked on an
early return or an alternate branch — exactly the paths nobody tests.
A syntactic "is close() called somewhere" check passes both functions;
only the CFG sees the path that skips it."""


def read_manifest_d10t(path, strict):
    handle = open(path, "rb")
    header = handle.read(4)
    if header != b"LEPM":
        return None              # the handle leaks on this return
    body = handle.read()
    handle.close()
    return body


def scan_entries_d10t(path, limit):
    handle = open(path, "rb")
    if limit:
        data = handle.read(limit)
        handle.close()
        return data
    return handle.read()         # leaks on the unlimited path
