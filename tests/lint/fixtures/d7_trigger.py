"""D7 trigger: blocking work reaches the event loop — once directly and
once hidden one call-graph hop away, which a syntactic scan of the async
body provably cannot see (the body contains no blocking primitive)."""

import time
import zlib


def unpack_frame_d7t(blob: bytes) -> bytes:
    # A sync helper: fine on a worker thread, fatal on the event loop.
    return zlib.decompress(blob)


async def handle_request_d7t(blob: bytes) -> bytes:
    time.sleep(1)                   # direct: parks the loop
    return unpack_frame_d7t(blob)   # transitive: zlib is one hop away
