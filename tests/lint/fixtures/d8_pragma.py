"""D8 pragma twin: a deliberately raw diagnostic echo (operator tooling
that wants the stored bytes exactly as they sit on disk)."""


def echo_raw_d8p(store, sock, key):
    blob = store.entries[key].chunk.payload
    sock.sendall(blob)  # lint: disable=D8
