"""D6 fixture: a hand-rolled segment-coding loop outside the session."""

from repro.core.bool_coder import BoolDecoder, BoolEncoder
from repro.core.coefcoder import SegmentCodec


def code_segment_by_hand(img, positions, config, start, end):
    codec = SegmentCodec(img.frame, img.coefficients, config)
    encoder = BoolEncoder()
    codec.encode(encoder, start, end)
    return encoder.finish()


def decode_segment_by_hand(img, payload, config, start, end):
    codec = SegmentCodec(img.frame, img.coefficients, config)
    codec.decode(BoolDecoder(payload), start, end)
