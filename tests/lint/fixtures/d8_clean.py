"""D8 clean twin: every path verifies before the socket write, and
derived values (lengths, rendered headers) are not the stored bytes."""


def serve_chunk_d8c(store, sock, key):
    blob = store.entries[key].chunk.payload
    blob = verify_digest_d8c(blob)
    sock.sendall(blob)


def frame_sizes_d8c(store, sock, key):
    size = measure_d8c(store.entries[key].chunk.payload)
    sock.write(render_size_d8c(size))


def verify_digest_d8c(blob: bytes) -> bytes:
    return blob


def measure_d8c(blob: bytes) -> int:
    return len(blob)


def render_size_d8c(size: int) -> bytes:
    return str(size).encode("ascii")
