"""D6 fixture: the codec is driven through the session pipeline."""

from repro.core.session import DecodeSession, EncodeSession


def compress_by_session(data):
    session = EncodeSession()
    session.write(data)
    return b"".join(session.finish())


def decompress_by_session(payload):
    session = DecodeSession()
    pieces = list(session.write(payload))
    pieces.extend(session.finish())
    return b"".join(pieces)
