"""D7 clean twin: the same shape of work, but the blocking callee is
awaited through the executor and the sync helper on the loop is pure."""

import asyncio
import zlib


def unpack_frame_d7c(blob: bytes) -> bytes:
    return zlib.decompress(blob)


def frame_header_d7c(blob: bytes) -> int:
    # Pure arithmetic: never blocks, so calling it from the loop is fine.
    return len(blob) % 251


async def handle_request_d7c(blob: bytes) -> bytes:
    loop = asyncio.get_running_loop()
    header = frame_header_d7c(blob)
    data = await loop.run_in_executor(None, unpack_frame_d7c, blob)
    await asyncio.sleep(0)
    return data[:header]
