"""D9 trigger: a threading lock is held across an ``await`` — on one of
them only on the empty-board path, so the rule has to know what is held
at each await, not merely that a lock and an await coexist."""

import asyncio
import threading


class BoardD9t:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = {}

    async def publish(self, key, value):
        with self._lock:
            self._pending[key] = value
            await asyncio.sleep(0)      # held across the await

    async def drain(self):
        with self._lock:
            items = dict(self._pending)
            if not items:
                await asyncio.sleep(0)  # held on the empty path only
            self._pending.clear()
        return items
