"""D1 fixture: integer-exact arithmetic only (and nothing for D2-D5)."""

import math

SCALE_NUM, SCALE_DEN = 3, 4

def probability_fix(count, total, frac_bits=16):
    ratio = (count << frac_bits) // total
    return ratio * math.isqrt(total)
