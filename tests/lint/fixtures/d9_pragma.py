"""D9 pragma twin: a deliberate held-across-await (single-task startup
code that runs before the loop serves concurrent traffic)."""

import asyncio
import threading


class BootD9p:
    def __init__(self):
        self._lock = threading.Lock()

    async def warm(self):
        with self._lock:
            await asyncio.sleep(0)  # lint: disable=D9
