"""D9 clean twin: locks guard only synchronous critical sections; every
``await`` happens after the ``with`` block exits.  A function-level
"has a lock and an await" scan would flag these — the CFG knows the lock
is already released."""

import asyncio
import threading


class BoardD9c:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = {}

    async def publish(self, key, value):
        with self._lock:
            self._pending[key] = value
        await asyncio.sleep(0)

    async def drain(self):
        with self._lock:
            items = dict(self._pending)
            self._pending.clear()
        await asyncio.sleep(0)
        return items
