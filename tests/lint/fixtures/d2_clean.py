"""D2 fixture: entropy through explicit seeds, time through the caller."""

def sample_delay(candidates, rng, now):
    ordered = sorted({1, 2, 3})
    index = rng.integers(0, len(candidates))
    return candidates[index], now, ordered
