"""The fixture corpus: every rule has a trigger, a clean twin, and a
pragma-suppressed twin, which keeps rules and pragma parsing honest."""

from pathlib import Path

import pytest

from repro.lint import run_lint

pytestmark = pytest.mark.lint

FIXTURES = Path(__file__).parent / "fixtures"

# D3 is project-wide (needs the enum + pin table); its fixtures live in
# test_d3_exhaustiveness.py as a synthetic tree.  D7 is also project-wide
# but works on a single file (its call-graph summary covers the fixture
# itself), so it lives here with the per-module dataflow rules D8–D10.
PER_MODULE_RULES = ["D1", "D2", "D4", "D5", "D6", "D7", "D8", "D9", "D10"]


def rules_hit(path: Path):
    return {f.rule for f in run_lint([path])}


@pytest.mark.parametrize("rule", PER_MODULE_RULES)
def test_trigger_fixture_fires(rule):
    findings = run_lint([FIXTURES / f"{rule.lower()}_trigger.py"])
    hits = [f for f in findings if f.rule == rule]
    assert len(hits) >= 2, f"{rule} trigger fixture produced {findings}"
    # Findings carry real locations.
    assert all(f.line > 0 and f.message for f in hits)


@pytest.mark.parametrize("rule", PER_MODULE_RULES)
def test_clean_fixture_is_silent(rule):
    assert rules_hit(FIXTURES / f"{rule.lower()}_clean.py") == set()


@pytest.mark.parametrize("rule", PER_MODULE_RULES)
def test_pragma_fixture_is_suppressed(rule):
    assert rule not in rules_hit(FIXTURES / f"{rule.lower()}_pragma.py")


def test_trigger_fixtures_fire_only_their_own_rule():
    # Fixtures sit outside the repro package, so *every* per-module rule
    # applies; a trigger file leaking findings of another rule means the
    # corpus no longer isolates what it claims to.
    for rule in PER_MODULE_RULES:
        assert rules_hit(FIXTURES / f"{rule.lower()}_trigger.py") == {rule}


def test_finding_order_is_deterministic():
    first = run_lint([FIXTURES])
    second = run_lint([FIXTURES])
    assert first == second
    assert first == sorted(first, key=lambda f: (f.path, f.line, f.col, f.rule))
