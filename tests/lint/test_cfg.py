"""CFG-builder unit tests: the edges the dataflow rules stand on.

Each test builds the graph for one small function and checks the edges
that matter — loop back edges, `try/finally` routing for returns and
exceptions, `async with` enter/exit nodes, `while True` having no
fall-through, and headers owning only their header expressions.
"""

import ast
import textwrap

import pytest

from repro.lint.cfg import (
    ENTRY,
    EXIT,
    STMT,
    TEST,
    WITH_ENTER,
    WITH_EXIT,
    build_cfg,
    function_defs,
)

pytestmark = pytest.mark.lint


def cfg_of(source: str):
    tree = ast.parse(textwrap.dedent(source))
    func = next(iter(function_defs(tree)))
    return build_cfg(func)


def nodes_of_kind(cfg, kind):
    return [n for n in cfg.nodes if n.kind == kind]


def node_with_source(cfg, fragment: str):
    """The unique plain-statement node whose source contains ``fragment``.

    Restricted to STMT nodes because compound headers (TEST, WITH_ENTER)
    carry the whole `ast.If`/`ast.With`, body included, and would match too.
    """
    hits = [n for n in cfg.nodes
            if n.kind == STMT and fragment in ast.unparse(n.stmt)]
    assert len(hits) == 1, f"{fragment!r} matched {len(hits)} nodes"
    return hits[0]


def reaches(cfg, src: int, dst: int) -> bool:
    seen, stack = {src}, [src]
    while stack:
        for succ in cfg.nodes[stack.pop()].succs:
            if succ == dst:
                return True
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return False


def test_linear_function_is_a_chain():
    cfg = cfg_of("""
        def f(a):
            x = a + 1
            return x
    """)
    assign = node_with_source(cfg, "x = a + 1")
    ret = node_with_source(cfg, "return x")
    assert cfg.nodes[cfg.entry].succs == [assign.index]
    assert assign.succs == [ret.index]
    assert ret.succs == [cfg.exit]


def test_branch_splits_and_joins():
    cfg = cfg_of("""
        def f(a):
            if a:
                x = 1
            else:
                x = 2
            return x
    """)
    test = nodes_of_kind(cfg, TEST)[0]
    then = node_with_source(cfg, "x = 1")
    other = node_with_source(cfg, "x = 2")
    ret = node_with_source(cfg, "return x")
    assert set(test.succs) == {then.index, other.index}
    assert then.succs == [ret.index] and other.succs == [ret.index]


def test_if_without_else_falls_through():
    cfg = cfg_of("""
        def f(a):
            if a:
                x = 1
            return a
    """)
    test = nodes_of_kind(cfg, TEST)[0]
    ret = node_with_source(cfg, "return a")
    assert ret.index in test.succs  # the false edge skips the body


def test_while_loop_has_back_edge_and_fallthrough():
    cfg = cfg_of("""
        def f(n):
            while n:
                n = step(n)
            return n
    """)
    test = nodes_of_kind(cfg, TEST)[0]
    body = node_with_source(cfg, "n = step(n)")
    ret = node_with_source(cfg, "return n")
    assert body.index in test.succs
    assert test.index in body.succs      # back edge
    assert ret.index in test.succs       # fall-through on falsy test


def test_while_true_has_no_fallthrough():
    cfg = cfg_of("""
        def f(q):
            while True:
                item = q.pop()
                if item is None:
                    return item
    """)
    while_test = next(n for n in nodes_of_kind(cfg, TEST)
                      if isinstance(n.stmt, ast.While))
    assert cfg.exit not in while_test.succs
    ret = node_with_source(cfg, "return item")
    # The only way to the exit is through the return.
    preds = [n.index for n in cfg.nodes if cfg.exit in n.succs]
    assert preds == [ret.index]


def test_break_exits_the_loop():
    cfg = cfg_of("""
        def f(xs):
            for x in xs:
                if x:
                    break
            return 1
    """)
    brk = node_with_source(cfg, "break")
    ret = node_with_source(cfg, "return 1")
    assert brk.succs == [ret.index]


def test_continue_jumps_to_loop_header():
    cfg = cfg_of("""
        def f(xs):
            out = []
            for x in xs:
                if not x:
                    continue
                out.append(x)
            return out
    """)
    cont = node_with_source(cfg, "continue")
    header = next(n for n in cfg.nodes
                  if n.stmt is not None and isinstance(n.stmt, ast.For))
    assert cont.succs == [header.index]


def test_return_in_try_routes_through_finally():
    cfg = cfg_of("""
        def f(p):
            h = acquire(p)
            try:
                return use(h)
            finally:
                h.close()
    """)
    ret = node_with_source(cfg, "return use(h)")
    close = node_with_source(cfg, "h.close()")
    # The return must NOT reach the exit directly — only via the finally.
    assert cfg.exit not in ret.succs
    assert close.index in ret.succs
    assert cfg.exit in close.succs


def test_exception_in_try_reaches_finally_and_handler():
    cfg = cfg_of("""
        def f(p):
            try:
                x = work(p)
            except ValueError:
                x = None
            finally:
                note(p)
            return x
    """)
    work = node_with_source(cfg, "x = work(p)")
    handler_body = node_with_source(cfg, "x = None")
    note = node_with_source(cfg, "note(p)")
    ret = node_with_source(cfg, "return x")
    # work may raise into the handler head, whose body joins at finally.
    assert any(cfg.nodes[s].kind == "except" for s in work.succs)
    assert reaches(cfg, handler_body.index, note.index)
    assert ret.index in note.succs


def test_async_with_gets_enter_and_exit_nodes():
    cfg = cfg_of("""
        async def f(gate, w):
            async with gate:
                await w.drain()
            return 1
    """)
    enters = nodes_of_kind(cfg, WITH_ENTER)
    exits = nodes_of_kind(cfg, WITH_EXIT)
    assert len(enters) == 1 and len(exits) == 1
    body = node_with_source(cfg, "await w.drain()")
    assert body.index in enters[0].succs
    assert exits[0].index in body.succs


def test_headers_own_only_their_header_expressions():
    cfg = cfg_of("""
        def f(a):
            if probe(a):
                mutate(a)
            return a
    """)
    test = nodes_of_kind(cfg, TEST)[0]
    owned = [ast.unparse(e) for e in test.exprs()]
    assert owned == ["probe(a)"]  # the body's mutate(a) is its own node
    texts = {ast.unparse(sub) for sub in test.walk_exprs()
             if isinstance(sub, ast.Call)}
    assert texts == {"probe(a)"}


def test_nested_def_is_opaque():
    cfg = cfg_of("""
        def f(a):
            def inner():
                return blocking(a)
            return inner
    """)
    inner = next(n for n in cfg.nodes
                 if isinstance(n.stmt, ast.FunctionDef))
    assert inner.exprs() == []  # the nested body is not this CFG's code


def test_body_that_always_returns_skips_with_exit():
    cfg = cfg_of("""
        def f(lock):
            with lock:
                return 1
    """)
    assert nodes_of_kind(cfg, WITH_EXIT) == []
    ret = node_with_source(cfg, "return 1")
    assert ret.succs == [cfg.exit]


def test_entry_and_exit_bracket_every_path():
    cfg = cfg_of("""
        def f(a):
            if a:
                return 1
            return 2
    """)
    assert cfg.nodes[cfg.entry].kind == ENTRY
    assert cfg.nodes[cfg.exit].kind == EXIT
    for node in cfg.nodes:
        if node.kind == STMT and isinstance(node.stmt, ast.Return):
            assert node.succs == [cfg.exit]
    assert cfg.reachable() >= {cfg.entry, cfg.exit}
