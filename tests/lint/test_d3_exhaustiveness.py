"""D3 against synthetic trees: the rule sees the enum, the pin table, and
every use site at once, so fixtures are built per-test in tmp_path."""

import pytest

from repro.lint import LintConfig, run_lint

pytestmark = pytest.mark.lint

ENUM_OK = """\
class ExitCode:
    SUCCESS = "success"
    TIMEOUT = "timeout"
"""

TABLE_OK = """\
from codes import ExitCode

EXIT_STATUS = {
    ExitCode.SUCCESS: 0,
    ExitCode.TIMEOUT: 8,
}
"""

USES_OK = """\
from codes import ExitCode

def classify(slow):
    return ExitCode.TIMEOUT if slow else ExitCode.SUCCESS
"""


def build_tree(tmp_path, enum=ENUM_OK, table=TABLE_OK, uses=USES_OK):
    (tmp_path / "codes.py").write_text(enum)
    (tmp_path / "table.py").write_text(table)
    (tmp_path / "uses.py").write_text(uses)
    config = LintConfig(options={"D3": {
        "enum_module": "codes", "status_module": "table",
        "enum_class": "ExitCode", "status_name": "EXIT_STATUS",
    }})
    return [f for f in run_lint([tmp_path], config) if f.rule == "D3"]


def test_complete_tree_is_clean(tmp_path):
    assert build_tree(tmp_path) == []


def test_unpinned_member(tmp_path):
    table = TABLE_OK.replace("    ExitCode.TIMEOUT: 8,\n", "")
    uses = USES_OK  # TIMEOUT still referenced; only the pin is missing
    findings = build_tree(tmp_path, table=table, uses=uses)
    assert any("TIMEOUT has no pinned status" in f.message for f in findings)


def test_duplicate_status_value(tmp_path):
    table = TABLE_OK.replace("ExitCode.TIMEOUT: 8", "ExitCode.TIMEOUT: 0")
    findings = build_tree(tmp_path, table=table)
    assert any("reuses status 0" in f.message for f in findings)


def test_pin_for_unknown_member(tmp_path):
    table = TABLE_OK.replace(
        "    ExitCode.TIMEOUT: 8,\n",
        "    ExitCode.TIMEOUT: 8,\n    ExitCode.GHOST: 9,\n",
    )
    findings = build_tree(tmp_path, table=table)
    assert any("unknown member ExitCode.GHOST" in f.message for f in findings)


def test_never_referenced_member(tmp_path):
    uses = "from codes import ExitCode\n\nCODE = ExitCode.SUCCESS\n"
    findings = build_tree(tmp_path, uses=uses)
    assert any(
        "TIMEOUT is never produced or consumed" in f.message for f in findings
    )


def test_partial_tree_is_skipped(tmp_path):
    # Single-file invocations (no enum/table in view) must not false-alarm.
    (tmp_path / "codes.py").write_text(ENUM_OK)
    config = LintConfig(options={"D3": {
        "enum_module": "codes", "status_module": "table",
    }})
    assert [f for f in run_lint([tmp_path], config) if f.rule == "D3"] == []


def test_shipped_taxonomy_passes_d3():
    # The real tree: every §6.2 member pinned once and reachable.
    from pathlib import Path

    import repro

    root = Path(repro.__file__).resolve().parent
    assert [f for f in run_lint([root]) if f.rule == "D3"] == []
