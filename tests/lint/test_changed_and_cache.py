"""Incremental linting: the content-hash cache and `--changed` mode.

The acceptance bar (ISSUE 7): a cached or `--changed` run must produce
*identical* findings to a cold full run — an incremental linter that
drops findings is worse than a slow one.
"""

import json
import shutil
import subprocess
from pathlib import Path

import pytest

from repro.lint import (
    LintCache,
    LintEngine,
    main as lint_main,
    run_lint,
    ruleset_version,
)
from repro.lint.cache import GitUnavailable, changed_files, module_key
from repro.lint.engine import load_module

pytestmark = pytest.mark.lint

FIXTURES = Path(__file__).parent / "fixtures"


def _git(repo: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-C", str(repo), "-c", "user.name=t",
         "-c", "user.email=t@example.invalid", *args],
        check=True, capture_output=True, timeout=30,
    )


def _temp_repo(tmp_path: Path) -> Path:
    repo = tmp_path / "work"
    repo.mkdir()
    _git(repo, "init", "-q")
    shutil.copy(FIXTURES / "d1_clean.py", repo / "settled.py")
    _git(repo, "add", "-A")
    _git(repo, "commit", "-q", "-m", "seed")
    return repo


# --------------------------------------------------------------------------
# The result cache
# --------------------------------------------------------------------------

def test_warm_cache_reproduces_cold_findings_exactly(tmp_path):
    cache_path = tmp_path / "cache.json"
    files = sorted(FIXTURES.glob("*.py"))
    engine = LintEngine()

    cold_cache = LintCache(cache_path)
    cold = engine.run(files, cache=cold_cache)
    cold_cache.save()
    assert cold_cache.misses == len(files) and cold_cache.hits == 0

    warm_cache = LintCache(cache_path)
    warm = engine.run(files, cache=warm_cache)
    assert warm_cache.hits == len(files) and warm_cache.misses == 0
    assert warm == cold                      # identical Finding objects
    assert run_lint(files) == cold           # and identical to cache-off


def test_cache_invalidated_by_content_change(tmp_path):
    target = tmp_path / "module.py"
    shutil.copy(FIXTURES / "d1_trigger.py", target)
    cache_path = tmp_path / "cache.json"

    first_cache = LintCache(cache_path)
    first = LintEngine().run([target], cache=first_cache)
    first_cache.save()
    assert any(f.rule == "D1" for f in first)

    target.write_text("VALUE = 1\n")  # rewrite: nothing to flag any more
    second_cache = LintCache(cache_path)
    second = LintEngine().run([target], cache=second_cache)
    assert second == []
    assert second_cache.misses == 1  # content hash changed, entry ignored


def test_cache_keyed_by_ruleset_version(tmp_path):
    cache_path = tmp_path / "cache.json"
    cache = LintCache(cache_path)
    cache.put(load_module(FIXTURES / "d1_trigger.py"), [])
    cache.save()

    doc = json.loads(cache_path.read_text())
    assert doc["ruleset"] == ruleset_version()
    doc["ruleset"] = "0" * 16  # simulate an edit to repro.lint itself
    cache_path.write_text(json.dumps(doc))

    stale = LintCache(cache_path)
    assert stale.get(load_module(FIXTURES / "d1_trigger.py")) is None


def test_corrupt_cache_file_is_treated_as_empty(tmp_path):
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json")
    cache = LintCache(cache_path)
    info = load_module(FIXTURES / "d1_trigger.py")
    assert cache.get(info) is None
    cache.put(info, [])
    cache.save()  # and it can still be rewritten cleanly
    assert LintCache(cache_path).get(info) == []


def test_module_key_covers_path_and_content(tmp_path):
    a = tmp_path / "a.py"
    b = tmp_path / "b.py"
    a.write_text("X = 1\n")
    b.write_text("X = 1\n")
    key_a = module_key(load_module(a))
    assert key_a != module_key(load_module(b))   # same bytes, other file
    a.write_text("X = 2\n")
    assert key_a != module_key(load_module(a))   # same file, other bytes


# --------------------------------------------------------------------------
# --changed
# --------------------------------------------------------------------------

def test_changed_files_sees_tracked_edits_and_untracked_files(tmp_path):
    repo = _temp_repo(tmp_path)
    assert changed_files(repo) == []

    (repo / "settled.py").write_text("ANSWER = 41 + 1\n")
    shutil.copy(FIXTURES / "d2_trigger.py", repo / "fresh.py")
    (repo / "notes.txt").write_text("not python\n")

    assert changed_files(repo) == [repo / "fresh.py", repo / "settled.py"]


def test_changed_files_raises_outside_a_work_tree(tmp_path):
    bare = tmp_path / "plain"
    bare.mkdir()
    (bare / "mod.py").write_text("X = 1\n")
    with pytest.raises(GitUnavailable):
        changed_files(bare)


def test_changed_run_matches_full_run_findings(tmp_path, capsys):
    """Committed files are clean, the uncommitted one carries the
    findings — so `--changed` (which lints only the new file) must report
    exactly what a full run over the tree reports."""
    repo = _temp_repo(tmp_path)
    shutil.copy(FIXTURES / "d4_trigger.py", repo / "hot.py")

    assert lint_main(["--json", str(repo)]) == 1
    full = json.loads(capsys.readouterr().out)
    assert full["files_scanned"] == 2

    assert lint_main(["--json", "--changed", str(repo)]) == 1
    incremental = json.loads(capsys.readouterr().out)
    assert incremental["files_scanned"] == 1
    assert incremental["findings"] == full["findings"]
    assert incremental["counts"] == full["counts"]


def test_changed_falls_back_to_full_run_without_git(tmp_path, capsys,
                                                    monkeypatch):
    import repro.lint.cache as cache_mod

    def refuse(*args, **kwargs):
        raise OSError("git not on PATH")

    monkeypatch.setattr(cache_mod.subprocess, "run", refuse)
    shutil.copy(FIXTURES / "d1_trigger.py", tmp_path / "mod.py")
    status = lint_main(["--changed", str(tmp_path)])
    captured = capsys.readouterr()
    assert status == 1                       # full run still happened
    assert "linting everything" in captured.err


def test_d7_method_resolution_is_subset_stable(tmp_path):
    """A blocking `write` *function* in one module must not make
    `stream.write(...)` in another module's async handler count as
    blocking: bare method names never resolve across modules, so a
    `--changed` subset sees exactly what the full tree sees.  (The first
    cut of the resolver guessed any globally-unique bare name, and a
    7-file `--changed` run invented D7 findings the 93-file run did
    not have.)"""
    sink = tmp_path / "sink.py"
    sink.write_text("def write(path, data):\n"
                    "    with open(path, 'wb') as h:\n"
                    "        h.write(data)\n")
    server = tmp_path / "server.py"
    server.write_text("async def pump(stream, data):\n"
                      "    stream.write(data)\n")
    alone = [f for f in run_lint([server]) if f.rule == "D7"]
    joint = [f for f in run_lint([sink, server]) if f.rule == "D7"]
    assert alone == joint == []


def test_changed_with_cache_through_the_cli(tmp_path, capsys):
    repo = _temp_repo(tmp_path)
    shutil.copy(FIXTURES / "d5_trigger.py", repo / "hot.py")
    cache_path = tmp_path / "cli-cache.json"

    assert lint_main(["--json", "--changed", "--cache", str(cache_path),
                      str(repo)]) == 1
    first = json.loads(capsys.readouterr().out)

    assert lint_main(["--json", "--changed", "--cache", str(cache_path),
                      str(repo)]) == 1
    second = json.loads(capsys.readouterr().out)
    assert second == first                   # byte-identical report dicts
