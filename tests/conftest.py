"""Shared fixtures: small deterministic JPEGs (cached per session)."""

import pytest

import repro.obs
from repro.corpus.builder import corpus_jpeg
from repro.corpus.images import synthetic_photo
from repro.jpeg.writer import encode_baseline_jpeg


@pytest.fixture(autouse=True)
def _reset_observability():
    """Each test gets a clean global registry and tracer (docs/observability.md)."""
    repro.obs.reset()
    yield
    repro.obs.reset()


@pytest.fixture(scope="session")
def small_jpeg() -> bytes:
    """64x64 colour 4:2:0 JPEG — the workhorse input."""
    return corpus_jpeg(seed=1, height=64, width=64, quality=85)


@pytest.fixture(scope="session")
def gray_jpeg() -> bytes:
    return corpus_jpeg(seed=2, height=48, width=56, quality=80, grayscale=True)


@pytest.fixture(scope="session")
def rst_jpeg() -> bytes:
    """JPEG with restart markers every 3 MCUs."""
    return corpus_jpeg(seed=3, height=64, width=80, quality=85, restart_interval=3)


@pytest.fixture(scope="session")
def odd_jpeg() -> bytes:
    """Odd dimensions + 4:2:0: exercises MCU padding."""
    pixels = synthetic_photo(37, 61, seed=4)
    return encode_baseline_jpeg(pixels, quality=85, subsampling="4:2:0")


@pytest.fixture(scope="session")
def trailer_jpeg() -> bytes:
    """JPEG with a comment segment and appended garbage (§A.3)."""
    pixels = synthetic_photo(40, 40, seed=5)
    return encode_baseline_jpeg(
        pixels, quality=85, comment=b"shot on a synthetic camera",
        trailer=b"\x00\x01TV-FORMAT-TRAILER" * 3,
    )
