"""StreamingHistogram: bounded-relative-error quantiles vs numpy."""

import math

import numpy as np
import pytest

from repro.obs import StreamingHistogram

QS = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99)


def _assert_close(hist, values, accuracy):
    for q in QS:
        exact = float(np.quantile(values, q, method="lower"))
        approx = hist.quantile(q)
        # DDSketch guarantee: |approx - exact| <= accuracy * |exact|, with a
        # hair of slack for the interpolation difference in the exact rank.
        assert abs(approx - exact) <= 2.0 * accuracy * abs(exact) + 1e-12, (
            f"q={q}: {approx} vs exact {exact}"
        )


def test_matches_numpy_on_lognormal_stream():
    rng = np.random.default_rng(7)
    values = rng.lognormal(mean=0.0, sigma=1.5, size=20_000)
    hist = StreamingHistogram()
    for v in values:
        hist.observe(float(v))
    _assert_close(hist, values, hist.relative_accuracy)


def test_matches_numpy_with_negatives_and_zeros():
    rng = np.random.default_rng(11)
    values = np.concatenate([
        rng.normal(loc=-5.0, scale=2.0, size=5_000),
        np.zeros(500),
        rng.lognormal(size=5_000),
    ])
    rng.shuffle(values)
    hist = StreamingHistogram(relative_accuracy=0.005)
    for v in values:
        hist.observe(float(v))
    for q in QS:
        exact = float(np.quantile(values, q, method="lower"))
        approx = hist.quantile(q)
        assert abs(approx - exact) <= 2.0 * 0.005 * abs(exact) + 1e-9


def test_extremes_are_exact():
    hist = StreamingHistogram()
    for v in (0.003, 1.0, 7.5, 1234.5):
        hist.observe(v)
    assert hist.quantile(0.0) == 0.003
    assert hist.quantile(1.0) == 1234.5
    assert hist.min == 0.003 and hist.max == 1234.5


def test_count_sum_mean_are_exact():
    hist = StreamingHistogram()
    values = [0.25, 0.5, 0.5, 3.0]
    for v in values:
        hist.observe(v)
    hist.observe(10.0, n=2)
    assert hist.count == 6
    assert hist.total == pytest.approx(sum(values) + 20.0)
    assert hist.mean == pytest.approx((sum(values) + 20.0) / 6)


def test_merge_equals_single_stream():
    rng = np.random.default_rng(3)
    a_vals = rng.lognormal(size=4_000)
    b_vals = rng.lognormal(sigma=2.0, size=4_000)
    merged, single = StreamingHistogram(), StreamingHistogram()
    for v in a_vals:
        merged.observe(float(v))
    other = StreamingHistogram()
    for v in b_vals:
        other.observe(float(v))
    for v in np.concatenate([a_vals, b_vals]):
        single.observe(float(v))
    merged.merge(other)
    assert merged.count == single.count
    assert merged.total == pytest.approx(single.total)
    for q in QS:
        assert merged.quantile(q) == pytest.approx(single.quantile(q))


def test_merge_rejects_mismatched_accuracy():
    with pytest.raises(ValueError):
        StreamingHistogram(0.01).merge(StreamingHistogram(0.02))


def test_rejects_nan_and_inf():
    hist = StreamingHistogram()
    for bad in (math.nan, math.inf, -math.inf):
        with pytest.raises(ValueError):
            hist.observe(bad)
    assert hist.count == 0


def test_empty_histogram_is_quiet():
    hist = StreamingHistogram()
    assert hist.quantile(0.5) == 0.0
    assert hist.mean == 0.0
    summary = hist.summary()
    assert summary["count"] == 0 and summary["p99"] == 0.0


def test_summary_keys():
    hist = StreamingHistogram()
    hist.observe(2.0)
    assert set(hist.summary()) == {
        "count", "sum", "mean", "min", "max", "p50", "p90", "p99"
    }


def test_invalid_quantile_and_accuracy():
    with pytest.raises(ValueError):
        StreamingHistogram(0.0)
    with pytest.raises(ValueError):
        StreamingHistogram().quantile(1.5)


def test_memory_stays_logarithmic():
    hist = StreamingHistogram()
    rng = np.random.default_rng(5)
    for v in rng.lognormal(sigma=3.0, size=50_000):
        hist.observe(float(v))
    # 1% relative accuracy over ~10 decades needs only a few hundred buckets.
    assert len(hist._positive) < 3_000
