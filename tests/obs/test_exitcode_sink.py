"""ExitCodeSink: §6.2 tabulation and the anomaly shutoff hook."""

import pytest

from repro.core.errors import ExitCode
from repro.obs import ExitCodeSink, MetricsRegistry
from repro.storage.safety import ShutoffSwitch


@pytest.fixture
def sink():
    return ExitCodeSink(MetricsRegistry(), metric="test.exit_codes")


@pytest.fixture
def switch(tmp_path):
    return ShutoffSwitch(directory=str(tmp_path))


def _fill(sink, successes, failures):
    for _ in range(successes):
        sink.record(ExitCode.SUCCESS)
    for _ in range(failures):
        sink.record(ExitCode.ROUNDTRIP_FAILED)


def test_counts_and_total(sink):
    _fill(sink, successes=3, failures=1)
    sink.record(ExitCode.PROGRESSIVE)
    assert sink.counts() == {
        ExitCode.SUCCESS: 3,
        ExitCode.ROUNDTRIP_FAILED: 1,
        ExitCode.PROGRESSIVE: 1,
    }
    assert sink.total == 5


def test_counts_come_from_the_registry(sink):
    sink.record(ExitCode.SUCCESS)
    counter = sink.registry.get("test.exit_codes", code=ExitCode.SUCCESS.value)
    assert counter is not None and counter.value == 1


def test_success_rate_and_shares(sink):
    assert sink.success_rate() == 1.0      # vacuous success on no data
    assert sink.shares() == {}
    _fill(sink, successes=9, failures=1)
    assert sink.success_rate() == pytest.approx(0.9)
    assert sink.shares()[ExitCode.ROUNDTRIP_FAILED] == pytest.approx(0.1)


def test_table_is_sorted_by_count_descending(sink):
    _fill(sink, successes=6, failures=1)
    for _ in range(3):
        sink.record(ExitCode.PROGRESSIVE)
    table = sink.table()
    assert [row[0] for row in table] == [
        ExitCode.SUCCESS.value, ExitCode.PROGRESSIVE.value,
        ExitCode.ROUNDTRIP_FAILED.value,
    ]
    assert table[0][1] == 6
    assert table[0][2] == pytest.approx(60.0)
    assert sum(row[2] for row in table) == pytest.approx(100.0)


def test_anomalous_needs_min_samples(sink):
    _fill(sink, successes=0, failures=19)
    assert not sink.anomalous(min_samples=20)
    sink.record(ExitCode.ROUNDTRIP_FAILED)
    assert sink.anomalous(min_samples=20)


def test_healthy_rates_never_trip(sink, switch):
    _fill(sink, successes=94, failures=6)   # the paper's §6.2 mix
    assert not sink.anomalous()
    assert not sink.guard(switch)
    assert not switch.engaged


def test_guard_engages_switch_once(sink, switch):
    _fill(sink, successes=2, failures=28)
    assert sink.guard(switch) is True
    assert switch.engaged
    # Idempotent: the switch stays engaged, but this call didn't engage it.
    assert sink.guard(switch) is False
    assert switch.engaged
    switch.release()
    assert not switch.engaged


def test_custom_thresholds(sink, switch):
    _fill(sink, successes=7, failures=3)
    assert sink.anomalous(min_success_rate=0.8, min_samples=5)
    assert sink.guard(switch, min_success_rate=0.8, min_samples=5)
    assert switch.engaged
