"""MetricsRegistry: label keying, families, snapshot/render, reset."""

import pytest

from repro.obs import Counter, Gauge, MetricsRegistry, StreamingHistogram, get_registry


@pytest.fixture
def registry():
    return MetricsRegistry()


def test_counter_identity_by_name_and_labels(registry):
    a = registry.counter("jobs", kind="encode")
    b = registry.counter("jobs", kind="encode")
    c = registry.counter("jobs", kind="decode")
    assert a is b and a is not c
    a.inc()
    a.inc(2)
    assert registry.counter("jobs", kind="encode").value == 3
    assert c.value == 0


def test_label_order_does_not_matter(registry):
    a = registry.counter("x", server="s1", kind="encode")
    b = registry.counter("x", kind="encode", server="s1")
    assert a is b


def test_counter_rejects_negative(registry):
    with pytest.raises(ValueError):
        registry.counter("c").inc(-1)


def test_gauge_moves_both_ways(registry):
    g = registry.gauge("depth", server="s1")
    g.set(5)
    g.inc()
    g.dec(2)
    assert g.value == 4.0


def test_kind_conflict_raises(registry):
    registry.counter("metric.a")
    with pytest.raises(TypeError):
        registry.gauge("metric.a")
    with pytest.raises(TypeError):
        registry.histogram("metric.a")
    registry.histogram("metric.h")
    with pytest.raises(TypeError):
        registry.counter("metric.h")


def test_same_name_different_labels_is_distinct(registry):
    # A family shares a name; instruments are per label set.
    registry.counter("exit_codes", code="Success").inc(9)
    registry.counter("exit_codes", code="Progressive").inc(1)
    series = {labels["code"]: c.value for labels, c in registry.series("exit_codes")}
    assert series == {"Success": 9, "Progressive": 1}


def test_get_returns_none_for_missing(registry):
    assert registry.get("nope") is None
    registry.counter("yep", k="v")
    assert registry.get("yep") is None          # labels must match exactly
    assert isinstance(registry.get("yep", k="v"), Counter)


def test_names_sorted_and_deduplicated(registry):
    registry.counter("b.metric", code="x")
    registry.counter("b.metric", code="y")
    registry.counter("a.metric")
    assert registry.names() == ["a.metric", "b.metric"]


def test_snapshot_shape(registry):
    registry.counter("n.jobs", kind="e").inc(2)
    registry.gauge("n.depth").set(7)
    registry.histogram("n.lat").observe(0.5)
    snap = registry.snapshot()
    assert snap["n.jobs"] == [{"labels": {"kind": "e"}, "kind": "counter", "value": 2.0}]
    assert snap["n.depth"][0]["value"] == 7.0
    hist_entry = snap["n.lat"][0]
    assert hist_entry["kind"] == "histogram"
    assert hist_entry["summary"]["count"] == 1


def test_render_lines(registry):
    registry.counter("jobs", kind="encode").inc(3)
    registry.histogram("lat").observe(1.0)
    text = registry.render()
    assert "jobs{kind=encode} counter 3" in text
    assert text.splitlines()[-1].startswith("lat histogram count=1 ")


def test_reset_empties(registry):
    registry.counter("a").inc()
    registry.histogram("b").observe(1.0)
    assert len(registry) == 2
    registry.reset()
    assert len(registry) == 0 and registry.names() == []


def test_histogram_types_and_defaults(registry):
    h = registry.histogram("h", relative_accuracy=0.02)
    assert isinstance(h, StreamingHistogram)
    assert h.relative_accuracy == 0.02
    assert isinstance(registry.gauge("g"), Gauge)


def test_global_registry_is_a_singleton():
    assert get_registry() is get_registry()
    get_registry().counter("test.global.counter").inc()
    assert get_registry().get("test.global.counter").value == 1
    # The autouse conftest fixture resets it between tests.
