"""Tracing: nesting, exception safety, JSONL export, histogram feed."""

import io
import json

import pytest

from repro.obs import MetricsRegistry, Tracer, get_tracer, trace_span


def test_nesting_depth_and_parent():
    tracer = Tracer(MetricsRegistry())
    with tracer.span("outer"):
        with tracer.span("middle"):
            with tracer.span("inner"):
                pass
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["outer"].depth == 0 and by_name["outer"].parent is None
    assert by_name["middle"].depth == 1 and by_name["middle"].parent == "outer"
    assert by_name["inner"].depth == 2 and by_name["inner"].parent == "middle"
    # Inner spans finish (and are recorded) first.
    assert [s.name for s in tracer.spans] == ["inner", "middle", "outer"]


def test_siblings_share_a_parent():
    tracer = Tracer(MetricsRegistry())
    with tracer.span("compress"):
        for i in range(3):
            with tracer.span("segment", segment=i):
                pass
    segments = [s for s in tracer.spans if s.name == "segment"]
    assert len(segments) == 3
    assert all(s.depth == 1 and s.parent == "compress" for s in segments)


def test_exception_recorded_and_propagated():
    tracer = Tracer(MetricsRegistry())
    with pytest.raises(KeyError):
        with tracer.span("outer"):
            with tracer.span("failing"):
                raise KeyError("boom")
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["failing"].error == "KeyError"
    assert by_name["outer"].error == "KeyError"   # propagated through
    # The stack unwound: a new span starts at depth 0 again.
    with tracer.span("after"):
        pass
    assert {s.name: s.depth for s in tracer.spans}["after"] == 0


def test_spans_feed_registry_histograms():
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    for _ in range(5):
        with tracer.span("stage"):
            pass
    hist = registry.get("span.stage.wall_seconds")
    assert hist is not None and hist.count == 5
    assert hist.min >= 0.0


def test_timing_is_positive_and_labels_survive():
    tracer = Tracer(MetricsRegistry())
    with tracer.span("work", file_id="abc123") as record:
        sum(range(10_000))
    assert record.wall_seconds > 0.0
    assert record.cpu_seconds >= 0.0
    assert record.labels == {"file_id": "abc123"}


def test_jsonl_round_trips():
    tracer = Tracer(MetricsRegistry())
    with tracer.span("a", k=1):
        with tracer.span("b"):
            pass
    lines = tracer.to_jsonl().splitlines()
    records = [json.loads(line) for line in lines]
    assert [r["name"] for r in records] == ["b", "a"]
    assert records[0]["parent"] == "a" and records[0]["depth"] == 1
    assert records[1]["labels"] == {"k": "1"}
    assert all("wall_ms" in r and "cpu_ms" in r for r in records)


def test_export_jsonl_to_file_object_and_path(tmp_path):
    tracer = Tracer(MetricsRegistry())
    with tracer.span("x"):
        pass
    buffer = io.StringIO()
    assert tracer.export_jsonl(buffer) == 1
    assert buffer.getvalue().endswith("\n")
    path = tmp_path / "trace.jsonl"
    assert tracer.export_jsonl(str(path)) == 1
    assert json.loads(path.read_text().strip())["name"] == "x"


def test_clear_resets_buffer_and_stack():
    tracer = Tracer(MetricsRegistry())
    with tracer.span("x"):
        pass
    tracer.clear()
    assert tracer.spans == []
    with tracer.span("fresh"):
        pass
    assert tracer.spans[0].depth == 0


def test_global_trace_span_uses_global_tracer():
    before = len(get_tracer().spans)
    with trace_span("global.test"):
        pass
    spans = get_tracer().spans[before:]
    assert [s.name for s in spans] == ["global.test"]
