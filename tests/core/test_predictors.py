"""Lakhani edge prediction and DC gradient prediction (§A.2)."""

import numpy as np
import pytest

from repro.core.predictors import (
    _div_round,
    dc_prediction_median8,
    dc_predictions,
    lakhani_col_prediction,
    lakhani_row_prediction,
    weighted_avg_abs,
    weighted_avg_value,
)
from repro.jpeg.dct import fdct2


class TestDivRound:
    @pytest.mark.parametrize("num,den,expected", [
        (10, 3, 3), (11, 3, 4), (-10, 3, -3), (-11, 3, -4),
        (5, 2, 3), (-5, 2, -3), (0, 7, 0),
    ])
    def test_rounds_half_away_from_zero(self, num, den, expected):
        assert _div_round(num, den) == expected


class TestWeightedAverages:
    def test_all_neighbours(self):
        assert weighted_avg_abs(3, -4, 6) == 3 + 4 + 3
        assert weighted_avg_value(2, 2, 2) == _div_round(13 * 2 + 13 * 2 + 6 * 2, 32)

    def test_missing_neighbours_treated_as_zero(self):
        assert weighted_avg_abs(None, 5, None) == 5
        assert weighted_avg_value(None, None, None) == 0


def _smooth_field(width=16, height=8, seed=0):
    """Two horizontally adjacent 8x8 pixel blocks from one smooth surface."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width].astype(np.float64)
    surface = (
        30.0 * np.sin(xx / 9.0) + 20.0 * np.cos(yy / 7.0)
        + 0.8 * xx + rng.normal(0, 0.3, (height, width))
    )
    return surface


class TestLakhani:
    def test_row_prediction_recovers_smooth_edge(self):
        """On a vertically smooth surface, predicting the current block's
        F[0, v] from the *above* block lands near the true value."""
        surface = _smooth_field(width=8, height=16, seed=1)  # 16 rows x 8 cols
        above = fdct2(surface[0:8, :])
        cur = fdct2(surface[8:16, :])
        cur_known = cur.copy()
        cur_known[0, :] = 0.0  # the unknowns
        scale = 64
        above_i = np.round(above * scale).astype(np.int64)
        cur_i = np.round(cur_known * scale).astype(np.int64)
        for v in range(1, 8):
            pred = lakhani_row_prediction(above_i, cur_i, v) / scale
            assert pred == pytest.approx(float(cur[0, v]), abs=3.0)

    def test_col_prediction_recovers_smooth_edge(self):
        surface = _smooth_field(16, 8, seed=2)  # 8 rows x 16 cols
        left = fdct2(surface[:, 0:8])
        cur = fdct2(surface[:, 8:16])
        cur_known = cur.copy()
        cur_known[:, 0] = 0.0
        scale = 64
        left_i = np.round(left * scale).astype(np.int64)
        cur_i = np.round(cur_known * scale).astype(np.int64)
        for u in range(1, 8):
            pred = lakhani_col_prediction(left_i, cur_i, u) / scale
            assert pred == pytest.approx(float(cur[u, 0]), abs=3.0)

    def test_prediction_is_deterministic_integer(self):
        rng = np.random.default_rng(3)
        a = rng.integers(-500, 500, (8, 8)).astype(np.int64)
        c = rng.integers(-500, 500, (8, 8)).astype(np.int64)
        assert lakhani_row_prediction(a, c, 3) == lakhani_row_prediction(a, c, 3)


def _gradient_blocks(slope_y=2.0, slope_x=0.5, base=50.0):
    """Three blocks of one global luminance gradient: above, left, current."""
    yy, xx = np.mgrid[0:16, 0:16].astype(np.float64)
    surface = base + slope_y * yy + slope_x * xx
    above = fdct2(surface[0:8, 8:16])
    left = fdct2(surface[8:16, 0:8])
    cur = fdct2(surface[8:16, 8:16])
    return above, left, cur


class TestDcPrediction:
    def _as_int(self, block, scale=1):
        return np.round(block * scale).astype(np.int64)

    def test_gradient_prediction_close_on_smooth_image(self):
        above, left, cur = _gradient_blocks()
        true_dc = int(round(cur[0, 0]))
        cur_no_dc = self._as_int(cur)
        cur_no_dc[0, 0] = 0
        preds, final, spread = dc_predictions(
            cur_no_dc, self._as_int(above), self._as_int(left), q_dc=1
        )
        assert len(preds) == 16
        assert abs(final - true_dc) <= 2
        assert spread <= 4  # a pure gradient: all 16 predictions agree

    def test_median8_less_accurate_than_gradient_on_gradients(self):
        """The §A.2.3 claim: gradient interpolation beats border matching
        when the image has a smooth gradient."""
        above, left, cur = _gradient_blocks(slope_y=4.0)
        true_dc = int(round(cur[0, 0]))
        cur_no_dc = self._as_int(cur)
        cur_no_dc[0, 0] = 0
        _, grad_pred, _ = dc_predictions(
            cur_no_dc, self._as_int(above), self._as_int(left), q_dc=1
        )
        med_pred, _ = dc_prediction_median8(
            cur_no_dc, self._as_int(above), self._as_int(left), q_dc=1
        )
        assert abs(grad_pred - true_dc) <= abs(med_pred - true_dc)

    def test_no_neighbours_returns_zero_with_max_spread(self):
        cur = np.zeros((8, 8), dtype=np.int64)
        preds, final, spread = dc_predictions(cur, None, None, q_dc=8)
        assert preds == []
        assert final == 0
        assert spread == 1 << 13

    def test_single_neighbour_gives_eight_predictions(self):
        above, _, cur = _gradient_blocks()
        cur_no_dc = self._as_int(cur)
        cur_no_dc[0, 0] = 0
        preds, _, _ = dc_predictions(cur_no_dc, self._as_int(above), None, q_dc=1)
        assert len(preds) == 8

    def test_quantisation_scales_prediction(self):
        above, left, cur = _gradient_blocks()
        cur_no_dc = self._as_int(cur)
        cur_no_dc[0, 0] = 0
        _, p1, _ = dc_predictions(cur_no_dc, self._as_int(above),
                                  self._as_int(left), q_dc=1)
        _, p4, _ = dc_predictions(cur_no_dc, self._as_int(above),
                                  self._as_int(left), q_dc=4)
        assert p4 == pytest.approx(p1 / 4, abs=1)

    def test_median8_no_neighbours(self):
        pred, spread = dc_prediction_median8(
            np.zeros((8, 8), dtype=np.int64), None, None, q_dc=8
        )
        assert pred == 0
        assert spread == 1 << 13
