"""The instrumented (effective-multithread) encode/decode paths."""

import pytest

from repro.core.decoder import decode_lepton_timed
from repro.core.encoder import encode_jpeg_timed
from repro.core.lepton import LeptonConfig, compress, decompress
from repro.corpus.builder import corpus_jpeg


@pytest.fixture(scope="module")
def photo():
    return corpus_jpeg(seed=90, height=128, width=128, quality=88)


class TestDecodeTimed:
    def test_output_matches_regular_decode(self, photo):
        payload = compress(photo, LeptonConfig(threads=4)).payload
        data, effective, serial = decode_lepton_timed(payload)
        assert data == photo
        assert data == decompress(payload)

    def test_effective_at_most_serial(self, photo):
        payload = compress(photo, LeptonConfig(threads=4)).payload
        _, effective, serial = decode_lepton_timed(payload)
        assert 0 < effective <= serial + 1e-9

    def test_single_segment_effective_equals_serial(self, photo):
        payload = compress(photo, LeptonConfig(threads=1)).payload
        _, effective, serial = decode_lepton_timed(payload)
        assert effective == pytest.approx(serial, rel=0.05)

    def test_more_segments_lower_effective(self, photo):
        p1 = compress(photo, LeptonConfig(threads=1)).payload
        p4 = compress(photo, LeptonConfig(threads=4)).payload
        _, eff1, _ = decode_lepton_timed(p1)
        _, eff4, _ = decode_lepton_timed(p4)
        assert eff4 < eff1


class TestEncodeTimed:
    def test_payload_decodes(self, photo):
        payload, effective, serial = encode_jpeg_timed(photo, threads=4)
        assert decompress(payload) == photo
        assert 0 < effective <= serial + 1e-9

    def test_payload_identical_to_regular_encode(self, photo):
        timed, _, _ = encode_jpeg_timed(photo, threads=2)
        regular = compress(photo, LeptonConfig(threads=2)).payload
        assert timed == regular

    def test_serial_head_bounds_effective(self, photo):
        """The encoder's serial Huffman-decode head means effective encode
        time cannot scale linearly with threads (the Figure-8 plateau)."""
        eff1 = min(encode_jpeg_timed(photo, threads=1)[1] for _ in range(2))
        eff8 = min(encode_jpeg_timed(photo, threads=8)[1] for _ in range(2))
        speedup = eff1 / eff8
        assert speedup < 7.0  # strictly sublinear: the serial head remains
