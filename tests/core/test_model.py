"""Adaptive statistic bins and context bucketing."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import (
    Branch,
    Model,
    ModelConfig,
    avg_bucket,
    confidence_bucket,
    nnz_bucket,
    pred_bucket,
)


class TestBranch:
    def test_starts_at_even_odds(self):
        assert Branch().prob_zero == 128

    def test_zeros_raise_prob_zero(self):
        b = Branch()
        for _ in range(20):
            b.record(0)
        assert b.prob_zero > 200

    def test_ones_lower_prob_zero(self):
        b = Branch()
        for _ in range(20):
            b.record(1)
        assert b.prob_zero < 56

    def test_prob_clamped_to_valid_range(self):
        b = Branch()
        for _ in range(10_000):
            b.record(0)
        assert 1 <= b.prob_zero <= 255

    def test_renormalisation_keeps_counts_in_byte(self):
        b = Branch()
        for i in range(10_000):
            b.record(i % 3 == 0)
        assert 1 <= b.zeros <= 255
        assert 1 <= b.ones <= 255

    def test_renormalisation_preserves_skew(self):
        b = Branch()
        for _ in range(300):
            b.record(0)
        before = b.prob_zero
        for _ in range(3):
            b.record(0)
        assert b.prob_zero >= before - 2  # halving must not flip the skew

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1), max_size=2000))
    def test_prob_always_valid(self, bits):
        b = Branch()
        for bit in bits:
            b.record(bit)
            assert 1 <= b.prob_zero <= 255


class TestModel:
    def test_bins_created_lazily(self):
        m = Model()
        assert m.bin_count == 0
        m.branch(("a", 1))
        m.branch(("a", 2))
        m.branch(("a", 1))  # same context: no new bin
        assert m.bin_count == 2

    def test_bins_are_independent(self):
        m = Model()
        m.branch(("x",)).record(0)
        assert m.branch(("y",)).prob_zero == 128

    def test_charge_accumulates_information(self):
        m = Model()
        m.set_category("dc")
        m.charge(128, 0)
        assert m.bit_costs["dc"] == pytest.approx(1.0)
        m.charge(128, 1)
        assert m.bit_costs["dc"] == pytest.approx(2.0)

    def test_charge_weights_by_surprise(self):
        m = Model()
        m.set_category("7x7")
        m.charge(250, 0)  # expected: cheap
        cheap = m.bit_costs["7x7"]
        m2 = Model()
        m2.set_category("7x7")
        m2.charge(250, 1)  # surprising: expensive
        assert m2.bit_costs["7x7"] > cheap * 5

    def test_default_config(self):
        assert Model().config.edge_mode == "lakhani"
        assert Model().config.dc_mode == "gradient"

    def test_config_carried(self):
        config = ModelConfig(edge_mode="avg", dc_mode="packjpg")
        assert Model(config).config.dc_mode == "packjpg"


class TestBuckets:
    def test_nnz_bucket_zero(self):
        assert nnz_bucket(0) == 0

    def test_nnz_bucket_monotone(self):
        values = [nnz_bucket(n) for n in range(50)]
        assert values == sorted(values)
        assert max(values) == 8  # 1.59^9 ≈ 64 > 49
        assert nnz_bucket(64) == 9  # large counts saturate the last bucket

    def test_nnz_bucket_matches_log159(self):
        for n in (1, 2, 5, 10, 30, 49):
            assert nnz_bucket(n) == min(int(math.log(n) / math.log(1.59)), 9)

    def test_avg_bucket_caps(self):
        assert avg_bucket(0) == 0
        assert avg_bucket(1) == 1
        assert avg_bucket(10**9) == 11

    def test_pred_bucket_signed(self):
        assert pred_bucket(5) == 3
        assert pred_bucket(-5) == -3
        assert pred_bucket(0) == 0

    def test_pred_bucket_caps(self):
        assert pred_bucket(10**9) == 11
        assert pred_bucket(-(10**9)) == -11

    def test_confidence_bucket(self):
        assert confidence_bucket(0) == 0
        assert confidence_bucket(1) == 1
        assert confidence_bucket(1 << 20) == 13


class TestFixedPointCosts:
    """Regressions for the D1 fix: the information accounting moved from
    math.log2 to exact integer arithmetic; it must still agree with the
    float reference it replaced (and be bit-identical across platforms)."""

    def test_log2_fix_matches_libm(self):
        from repro.core.model import COST_FRAC_BITS, _log2_fix

        scale = 1 << COST_FRAC_BITS
        for x in (1, 2, 3, 7, 128, 255, 1000, (1 << 40) + 12345):
            assert _log2_fix(x) / scale == pytest.approx(
                math.log2(x), abs=2.0 / scale
            )

    def test_log2_fix_exact_on_powers_of_two(self):
        from repro.core.model import COST_FRAC_BITS, _log2_fix

        for k in range(0, 64, 7):
            assert _log2_fix(1 << k) == k << COST_FRAC_BITS

    def test_log2_fix_rejects_nonpositive(self):
        from repro.core.model import _log2_fix

        with pytest.raises(ValueError):
            _log2_fix(0)

    def test_bit_cost_table_matches_shannon(self):
        from repro.core.model import _BIT_COST, COST_FRAC_BITS

        scale = 1 << COST_FRAC_BITS
        for p in range(1, 256):
            assert _BIT_COST[p] / scale == pytest.approx(
                -math.log2(p / 256.0), abs=2.0 / scale
            )

    def test_nnz_bucket_table_matches_float_construction(self):
        from repro.core.model import _NNZ_BUCKET

        log159 = math.log(1.59)
        for n in range(1, 50):
            assert _NNZ_BUCKET[n] == min(int(math.log(n) / log159), 9)

    def test_charge_state_is_integer(self):
        m = Model()
        m.set_category("edge")
        m.charge(37, 1)
        m.charge(219, 0)
        assert all(isinstance(v, int) for v in m._cost_fix.values())
        # The public property still reports float bits.
        assert m.bit_costs["edge"] > 0.0
