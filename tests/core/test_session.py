"""The streaming CodecSession contract (repro.core.session).

Three guarantees the refactor exists to make structural:

* every decode entry point is the *same* pipeline — over a corruption
  corpus they must agree byte-for-byte on success and exception-type on
  failure;
* the session streams: output begins before the final input chunk is
  consumed, observable through the `lepton.session.decode.*` telemetry;
* the encode entry points share one policy — `encode_jpeg_timed` rejects
  exactly what `encode_jpeg` rejects (the old fork silently dropped the
  CMYK policy, the memory budgets, and the deadline).
"""

import random
import tracemalloc

import pytest

from repro.core.decoder import (
    decode_lepton,
    decode_lepton_bounded,
    decode_lepton_stream,
    decode_lepton_timed,
)
from repro.core.encoder import encode_jpeg, encode_jpeg_timed
from repro.core.errors import (
    FormatError,
    LeptonError,
    MemoryLimitExceeded,
    TimeoutExceeded,
    VersionError,
)
from repro.core.lepton import (
    LeptonConfig,
    compress,
    decompress_chunks,
)
from repro.corpus.builder import corpus_jpeg
from repro.corpus.images import synthetic_photo
from repro.jpeg.errors import JpegError
from repro.jpeg.writer import encode_baseline_jpeg
from repro.obs import get_registry


@pytest.fixture(scope="module")
def cmyk_jpeg() -> bytes:
    import numpy as np

    rgb = synthetic_photo(48, 64, seed=11)
    k = np.clip(255 - rgb.mean(axis=2, keepdims=True) * 0.5, 0, 255)
    cmyk = np.concatenate([rgb, k.astype(np.uint8)], axis=2)
    return encode_baseline_jpeg(cmyk, quality=85)

ACCEPTABLE = (LeptonError, FormatError, VersionError, JpegError,
              ValueError, KeyError)


@pytest.fixture(scope="module")
def photo_payload():
    data = corpus_jpeg(seed=37, height=64, width=96)
    return data, compress(data, LeptonConfig(threads=2)).payload


def _outcome(decoder, payload):
    """(kind, value): decoded bytes, or the exception type's name."""
    try:
        return "data", decoder(payload)
    except ACCEPTABLE as exc:
        return "error", type(exc).__name__


DECODERS = {
    "decode_lepton": lambda p: decode_lepton(p),
    "decode_lepton_stream": lambda p: b"".join(decode_lepton_stream(p)),
    "decode_lepton_bounded": lambda p: b"".join(decode_lepton_bounded(p)),
    "decode_lepton_timed": lambda p: decode_lepton_timed(p)[0],
    "decompress_chunks": lambda p: b"".join(
        decompress_chunks([p[i:i + 97] for i in range(0, len(p), 97)] or [p])
    ),
}


class TestEntryPointEquivalence:
    """All decode surfaces are adapters over one session: they cannot
    disagree — not on good input, and not on any corruption."""

    def _assert_agree(self, payload):
        outcomes = {name: _outcome(fn, payload) for name, fn in DECODERS.items()}
        kinds = {k for k, _ in outcomes.values()}
        assert len(kinds) == 1, f"entry points diverged: {outcomes}"
        if kinds == {"data"}:
            values = {v for _, v in outcomes.values()}
            assert len(values) == 1, "entry points decoded different bytes"

    def test_intact_payload(self, photo_payload):
        data, payload = photo_payload
        for name, fn in DECODERS.items():
            assert fn(payload) == data, name

    def test_truncations(self, photo_payload):
        _, payload = photo_payload
        for cut in range(2, len(payload), max(1, len(payload) // 25)):
            self._assert_agree(payload[:cut])

    def test_bit_flips(self, photo_payload):
        _, payload = photo_payload
        rng = random.Random(11)
        for _ in range(40):
            pos = rng.randrange(2, len(payload))  # keep the magic: every
            mutated = bytearray(payload)          # surface stays on the
            mutated[pos] ^= 1 << rng.randrange(8)  # Lepton path
            self._assert_agree(bytes(mutated))

    def test_structured_garbage(self, photo_payload):
        _, payload = photo_payload
        for blob in (payload[:2], payload[:27], payload[:28],
                     payload + b"\x00\x00\x00\x00\x00",
                     payload[:40] + payload[60:]):
            self._assert_agree(blob)


def test_bounded_decode_peak_scales_with_width_not_area():
    """Consume-and-discard decode: 4x the pixels, same traced peak.

    Stricter than the joined-output variant in test_bounded_decode.py —
    nothing but the session's own working set (row windows, model bins,
    one row band of output) is alive during the measurement.
    """
    def peak(height):
        data = corpus_jpeg(seed=98, height=height, width=64, quality=85,
                           grayscale=True)
        payload = compress(data, LeptonConfig(threads=1)).payload
        consumed = 0
        tracemalloc.start()
        for piece in decode_lepton_bounded(payload):
            consumed += len(piece)
        _, pk = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert consumed == len(data)
        return pk

    short, tall = peak(64), peak(256)
    assert tall < short * 2.0


class TestStreaming:
    def test_first_output_before_last_input(self, photo_payload):
        """The acceptance criterion: a decode session emits its first
        output chunk before consuming the final input chunk."""
        data, payload = photo_payload
        chunks = [payload[i:i + 64] for i in range(0, len(payload), 64)]
        assert len(chunks) > 3
        from repro.core.session import DecodeSession

        session = DecodeSession()
        out = []
        fed_when_first_piece = None
        for fed, chunk in enumerate(chunks, start=1):
            for piece in session.write(chunk):
                if piece and fed_when_first_piece is None:
                    fed_when_first_piece = fed
                out.append(piece)
        out.extend(session.finish())
        assert b"".join(out) == data
        assert fed_when_first_piece is not None
        assert fed_when_first_piece < len(chunks)

    def test_session_telemetry(self, photo_payload):
        data, payload = photo_payload
        registry = get_registry()
        before_in = registry.counter("lepton.session.decode.bytes_in").value
        before_out = registry.counter("lepton.session.decode.bytes_out").value
        assert b"".join(decompress_chunks([payload])) == data
        assert (registry.counter("lepton.session.decode.bytes_in").value
                - before_in) == len(payload)
        assert (registry.counter("lepton.session.decode.bytes_out").value
                - before_out) == len(data)
        ttfb = registry.histogram("lepton.session.decode.ttfb_seconds")
        assert ttfb.count >= 1


class TestTimedEncodeParity:
    """Satellite of the refactor: the timed encoder runs the same session,
    so it enforces the same policy — the old fork did not."""

    def test_cmyk_rejected_identically(self, cmyk_jpeg):
        with pytest.raises(JpegError) as plain:
            encode_jpeg(cmyk_jpeg)
        with pytest.raises(JpegError) as timed:
            encode_jpeg_timed(cmyk_jpeg)
        assert type(plain.value) is type(timed.value)

    def test_cmyk_allowed_identically(self, cmyk_jpeg):
        payload, _ = encode_jpeg(cmyk_jpeg, allow_cmyk=True)
        timed_payload, _, _ = encode_jpeg_timed(cmyk_jpeg, allow_cmyk=True)
        assert payload == timed_payload
        assert decode_lepton(payload) == cmyk_jpeg

    def test_decode_memory_limit_enforced_identically(self):
        data = corpus_jpeg(seed=5, height=64, width=64)
        with pytest.raises(MemoryLimitExceeded):
            encode_jpeg(data, decode_memory_limit=1024)
        with pytest.raises(MemoryLimitExceeded):
            encode_jpeg_timed(data, decode_memory_limit=1024)

    def test_encode_memory_limit_enforced_identically(self):
        data = corpus_jpeg(seed=5, height=64, width=64)
        with pytest.raises(MemoryLimitExceeded):
            encode_jpeg(data, encode_memory_limit=1024)
        with pytest.raises(MemoryLimitExceeded):
            encode_jpeg_timed(data, encode_memory_limit=1024)

    def test_deadline_enforced_identically(self):
        data = corpus_jpeg(seed=5, height=64, width=64)
        with pytest.raises(TimeoutExceeded):
            encode_jpeg(data, deadline=-1.0)
        with pytest.raises(TimeoutExceeded):
            encode_jpeg_timed(data, deadline=-1.0)


def test_session_modules_are_in_lint_scope():
    """The containment rule must cover the module it protects and the
    session must sit inside the determinism scopes."""
    from repro.lint.config import default_config

    config = default_config()
    for rule in ("D2", "D5", "D6"):
        assert config.in_scope(rule, "repro.core.session"), rule
    for module in ("repro.core.encoder", "repro.core.decoder",
                   "repro.core.chunks", "repro.core.lepton", "repro.cli",
                   "repro.storage.blockstore"):
        assert config.in_scope("D6", module), module
    # The baseline coders legitimately own their loops.
    assert not config.in_scope("D6", "repro.baselines.packjpg_like")
