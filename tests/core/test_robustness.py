"""Corruption robustness: a decoder fed garbage must fail loudly, not
silently corrupt or crash uncontrolled (the §5 threat model)."""

import random
import zlib

import pytest

from repro.core.errors import FormatError, LeptonError, VersionError
from repro.core.lepton import LeptonConfig, compress, decompress
from repro.corpus.builder import corpus_jpeg
from repro.jpeg.errors import JpegError


@pytest.fixture(scope="module")
def payload():
    data = corpus_jpeg(seed=91, height=64, width=64)
    return data, compress(data, LeptonConfig(threads=2)).payload


# Corrupt containers must fail through these — never segfault-style chaos.
# zlib.error covers blobs whose damaged magic routes them down the Deflate
# fallback path.
ACCEPTABLE = (LeptonError, FormatError, VersionError, JpegError,
              ValueError, KeyError, zlib.error)


class TestContainerFuzzing:
    def test_truncations_never_crash(self, payload):
        original, blob = payload
        for cut in range(0, len(blob), max(1, len(blob) // 40)):
            try:
                out = decompress(blob[:cut])
            except ACCEPTABLE:
                continue
            # A lucky truncation may still decode; it must then be exact
            # (the container's output size and window checks).
            assert out == original

    def test_single_byte_flips_detected_or_exact(self, payload):
        original, blob = payload
        rng = random.Random(7)
        silent_wrong = 0
        for _ in range(60):
            pos = rng.randrange(len(blob))
            mutated = bytearray(blob)
            mutated[pos] ^= 1 << rng.randrange(8)
            try:
                out = decompress(bytes(mutated))
            except ACCEPTABLE:
                continue
            if out != original:
                # Arithmetic-stream flips can decode to a wrong-but-
                # well-formed scan; production catches these with the
                # round-trip admission and decode-size checks.  They must
                # at least have the promised output size.
                silent_wrong += 1
                assert len(out) == len(original)
        assert silent_wrong < 40  # most corruptions are detected outright

    def test_header_region_flips_always_raise(self, payload):
        _, blob = payload
        for pos in range(0, 8):
            mutated = bytearray(blob)
            mutated[pos] ^= 0xFF
            with pytest.raises(ACCEPTABLE):
                decompress(bytes(mutated))

    def test_empty_and_tiny_inputs(self):
        for junk in (b"", b"\xCF", b"\xCF\x84", b"\xCF\x84\x01Z"):
            with pytest.raises(ACCEPTABLE):
                decompress(junk)

    def test_wrong_magic_treated_as_deflate(self):
        # Non-Lepton payloads go down the Deflate path; invalid zlib raises.
        with pytest.raises(ACCEPTABLE):
            decompress(b"definitely not zlib either")


class TestCompressorFuzzing:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_soi_prefixed_garbage_never_crashes(self, seed):
        from repro.corpus.corruptions import not_an_image

        result = compress(not_an_image(size=1024, seed=seed))
        assert result.payload is not None
        assert decompress(result.payload) == not_an_image(size=1024, seed=seed)

    def test_bit_flipped_jpegs_classified(self):
        """Random flips in a real JPEG: compress() must always return a
        result — SUCCESS with byte-exact round trip, or a classified
        reject stored via Deflate."""
        base = corpus_jpeg(seed=92, height=64, width=64)
        rng = random.Random(3)
        for _ in range(25):
            pos = rng.randrange(len(base))
            mutated = bytearray(base)
            mutated[pos] ^= 1 << rng.randrange(8)
            mutated = bytes(mutated)
            result = compress(mutated, LeptonConfig(threads=1))
            assert result.payload is not None
            assert decompress(result.payload) == mutated
