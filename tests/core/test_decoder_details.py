"""Decoder internals: parallel/sequential equivalence, metadata, edges."""

import pytest

from repro.core.decoder import decode_lepton, decode_lepton_stream
from repro.core.format import read_container, write_container
from repro.core.errors import FormatError
from repro.core.lepton import (
    FORMAT_DEFLATE,
    FORMAT_LEPTON,
    LeptonConfig,
    compress,
    decompress_result,
)
from repro.corpus.builder import corpus_jpeg


class TestParallelEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_parallel_matches_sequential(self, seed):
        data = corpus_jpeg(seed=200 + seed, height=80, width=96,
                           restart_interval=(seed % 2) * 3)
        payload = compress(data, LeptonConfig(threads=4)).payload
        assert decode_lepton(payload, parallel=True) == \
            decode_lepton(payload, parallel=False) == data

    def test_stream_piece_boundaries_independent_of_parallelism(self):
        data = corpus_jpeg(seed=210, height=64, width=64)
        payload = compress(data, LeptonConfig(threads=2)).payload
        seq = list(decode_lepton_stream(payload, parallel=False))
        par = list(decode_lepton_stream(payload, parallel=True))
        assert b"".join(seq) == b"".join(par) == data


class TestDecompressResult:
    def test_lepton_metadata(self):
        data = corpus_jpeg(seed=220, height=48, width=48)
        payload = compress(data).payload
        result = decompress_result(payload)
        assert result.format == FORMAT_LEPTON
        assert result.data == data
        assert result.decode_seconds > 0

    def test_deflate_metadata(self):
        result_c = compress(b"plain bytes " * 10)
        result = decompress_result(result_c.payload)
        assert result.format == FORMAT_DEFLATE


class TestContainerEdges:
    def test_prefix_slice_out_of_bounds_detected(self):
        data = corpus_jpeg(seed=230, height=48, width=48)
        payload = compress(data, LeptonConfig(threads=1)).payload
        lepton = read_container(payload)
        lepton.prefix_length = len(lepton.jpeg_header) + 50
        # output_size no longer matches what the window can produce.
        with pytest.raises(FormatError):
            decode_lepton(write_container(lepton))

    def test_wrong_output_size_detected(self):
        data = corpus_jpeg(seed=231, height=48, width=48)
        payload = compress(data, LeptonConfig(threads=1)).payload
        lepton = read_container(payload)
        lepton.output_size += 1
        with pytest.raises(FormatError):
            decode_lepton(write_container(lepton))

    def test_wrong_scan_take_detected(self):
        data = corpus_jpeg(seed=232, height=48, width=48)
        payload = compress(data, LeptonConfig(threads=1)).payload
        lepton = read_container(payload)
        lepton.scan_take += 5
        with pytest.raises(FormatError):
            decode_lepton(write_container(lepton))

    def test_rewritten_container_still_decodes(self):
        """read → write → read is lossless (format stability)."""
        data = corpus_jpeg(seed=233, height=64, width=64, restart_interval=2)
        payload = compress(data, LeptonConfig(threads=2)).payload
        rewritten = write_container(read_container(payload))
        assert decode_lepton(rewritten) == data

    def test_tiny_interleave_slice_roundtrips(self):
        data = corpus_jpeg(seed=234, height=64, width=64)
        payload = compress(
            data, LeptonConfig(threads=4, interleave_slice=1)
        ).payload
        assert decode_lepton(payload) == data
