"""End-to-end Lepton: compress → decompress byte-exactness and behaviour."""

import numpy as np
import pytest

from repro.core.decoder import decode_lepton_stream
from repro.core.format import read_container
from repro.core.lepton import (
    FORMAT_DEFLATE,
    FORMAT_LEPTON,
    LeptonConfig,
    compress,
    decompress,
    decompress_stream,
    roundtrip_check,
)
from repro.core.model import ModelConfig
from repro.corpus.builder import corpus_jpeg, degenerate_jpegs


@pytest.mark.parametrize("kwargs", [
    dict(height=64, width=64, quality=85),
    dict(height=64, width=64, quality=85, subsampling="4:4:4"),
    dict(height=48, width=56, quality=80, grayscale=True),
    dict(height=64, width=80, quality=85, restart_interval=3),
    dict(height=33, width=47, quality=85),
    dict(height=40, width=40, quality=30),
], ids=["420", "444", "gray", "rst", "odd", "lowq"])
def test_roundtrip_exact(kwargs):
    data = corpus_jpeg(seed=20, **kwargs)
    result = compress(data)
    assert result.ok
    assert result.format == FORMAT_LEPTON
    assert decompress(result.payload) == data


@pytest.mark.parametrize("threads", [1, 2, 4, 8])
def test_roundtrip_any_thread_count(small_jpeg, threads):
    result = compress(small_jpeg, LeptonConfig(threads=threads))
    assert result.ok
    assert decompress(result.payload) == small_jpeg
    assert decompress(result.payload, parallel=False) == small_jpeg


def test_degenerate_images_roundtrip():
    for item in degenerate_jpegs(seed=4):
        result = compress(item.data)
        assert result.ok, item.name
        assert decompress(result.payload) == item.data, item.name


class TestCompressionBehaviour:
    def test_achieves_real_savings(self):
        data = corpus_jpeg(seed=21, height=128, width=128, quality=85)
        result = compress(data)
        assert result.savings_fraction > 0.10
        assert result.compression_ratio < 0.90

    def test_single_thread_compresses_at_least_as_well(self):
        """§3.4: each thread's model restarts, so more threads cost bytes."""
        data = corpus_jpeg(seed=22, height=96, width=96, quality=85)
        one = compress(data, LeptonConfig(threads=1))
        four = compress(data, LeptonConfig(threads=4))
        assert one.output_size <= four.output_size

    def test_trailer_garbage_preserved(self, trailer_jpeg):
        result = compress(trailer_jpeg)
        assert result.ok
        assert decompress(result.payload) == trailer_jpeg

    def test_stats_populated(self, small_jpeg):
        result = compress(small_jpeg, LeptonConfig(collect_breakdown=True))
        stats = result.stats
        assert stats.input_size == len(small_jpeg)
        assert stats.output_size == result.output_size
        assert stats.thread_count >= 1
        assert set(stats.bit_costs) == {"nnz", "7x7", "edge", "dc"}
        assert stats.original_bits["header"] > 0
        assert stats.original_bits["7x7"] > 0

    def test_segment_count_matches_container(self, small_jpeg):
        result = compress(small_jpeg, LeptonConfig(threads=4))
        parsed = read_container(result.payload)
        assert len(parsed.segments) == result.stats.thread_count

    def test_deterministic_output(self, small_jpeg):
        a = compress(small_jpeg, LeptonConfig(threads=2)).payload
        b = compress(small_jpeg, LeptonConfig(threads=2)).payload
        assert a == b

    def test_ablation_configs_roundtrip(self, small_jpeg):
        for edge_mode, dc_mode in (("avg", "gradient"), ("lakhani", "median8"),
                                   ("avg", "packjpg")):
            config = LeptonConfig(model=ModelConfig(edge_mode=edge_mode,
                                                    dc_mode=dc_mode))
            result = compress(small_jpeg, config)
            assert result.ok
            assert decompress(result.payload,
                              model_config=config.model) == small_jpeg


class TestStreaming:
    def test_stream_concatenates_to_original(self, rst_jpeg):
        result = compress(rst_jpeg, LeptonConfig(threads=2))
        pieces = list(decompress_stream(result.payload))
        assert b"".join(pieces) == rst_jpeg
        assert len(pieces) > 2  # header, scan parts, trailer

    def test_first_piece_is_header_before_scan_decode(self, small_jpeg):
        """Time-to-first-byte: the header is yielded before any arithmetic
        decoding happens."""
        result = compress(small_jpeg)
        stream = decode_lepton_stream(result.payload)
        first = next(stream)
        assert small_jpeg.startswith(first)
        assert first.startswith(b"\xFF\xD8")

    def test_stream_works_sequentially(self, small_jpeg):
        result = compress(small_jpeg, LeptonConfig(threads=4))
        pieces = list(decode_lepton_stream(result.payload, parallel=False))
        assert b"".join(pieces) == small_jpeg


class TestAdmission:
    def test_roundtrip_check_admits_good_file(self, small_jpeg):
        result = roundtrip_check(small_jpeg)
        assert result.ok
        assert result.format == FORMAT_LEPTON

    def test_roundtrip_check_falls_back_for_non_jpeg(self):
        data = b"not an image at all" * 100
        result = roundtrip_check(data)
        assert not result.ok
        assert result.format == FORMAT_DEFLATE
        assert decompress(result.payload) == data

    def test_fallback_disabled_returns_none_payload(self):
        result = compress(b"junk", LeptonConfig(deflate_fallback=False))
        assert result.payload is None
        assert not result.ok


class TestInterleave:
    @pytest.mark.parametrize("slice_size", [64, 256, 4096])
    def test_any_interleave_slice_roundtrips(self, rst_jpeg, slice_size):
        config = LeptonConfig(threads=4, interleave_slice=slice_size)
        result = compress(rst_jpeg, config)
        assert decompress(result.payload) == rst_jpeg
