"""Independent 4-MiB-chunk compression (§3.4): any substring decodable."""

import zlib

import pytest

from repro.core.chunks import (
    StoredChunk,
    chunk_ranges,
    compress_chunked,
    decompress_chunk,
    decompress_file,
    verify_chunks,
)
from repro.core.lepton import FORMAT_DEFLATE, FORMAT_LEPTON, LeptonConfig
from repro.corpus.builder import corpus_jpeg


@pytest.fixture(scope="module")
def medium_jpeg():
    return corpus_jpeg(seed=30, height=128, width=160, quality=85,
                       restart_interval=5)


class TestChunkRanges:
    def test_empty_file(self):
        assert chunk_ranges(0) == []

    def test_exact_multiple(self):
        assert chunk_ranges(200, 100) == [(0, 100), (100, 200)]

    def test_remainder_chunk(self):
        assert chunk_ranges(250, 100) == [(0, 100), (100, 200), (200, 250)]

    def test_single_chunk(self):
        assert chunk_ranges(50, 100) == [(0, 50)]


@pytest.mark.parametrize("chunk_size", [300, 700, 1500])
def test_each_chunk_decodes_independently(medium_jpeg, chunk_size):
    chunks = compress_chunked(medium_jpeg, chunk_size, LeptonConfig(threads=2))
    assert all(c.format == FORMAT_LEPTON for c in chunks)
    for chunk in chunks:
        a, b = chunk.original_range
        assert decompress_chunk(chunk) == medium_jpeg[a:b]


def test_file_reassembles(medium_jpeg):
    chunks = compress_chunked(medium_jpeg, 900)
    assert decompress_file(chunks) == medium_jpeg


def test_verify_chunks_passes(medium_jpeg):
    chunks = compress_chunked(medium_jpeg, 700)
    assert verify_chunks(medium_jpeg, chunks)


def test_out_of_order_chunks_reassemble(medium_jpeg):
    chunks = compress_chunked(medium_jpeg, 600)
    shuffled = list(reversed(chunks))
    assert decompress_file(shuffled) == medium_jpeg


def test_boundary_in_header(medium_jpeg):
    """A chunk boundary inside the JPEG header: chunk 0 is pure header
    bytes plus the scan start."""
    chunks = compress_chunked(medium_jpeg, 100)  # header is several hundred B
    a, b = chunks[0].original_range
    assert decompress_chunk(chunks[0]) == medium_jpeg[:100]
    assert verify_chunks(medium_jpeg, chunks)


def test_boundary_in_trailer():
    data = corpus_jpeg(seed=31, height=64, width=64) + b"X" * 500
    # Force trailer garbage through the corpus writer instead:
    from repro.corpus.corruptions import append_garbage

    data = append_garbage(corpus_jpeg(seed=31, height=64, width=64), b"Y" * 900)
    chunks = compress_chunked(data, 400)
    assert verify_chunks(data, chunks)


def test_single_chunk_file_matches_whole_compress(medium_jpeg):
    chunks = compress_chunked(medium_jpeg, 1 << 30)
    assert len(chunks) == 1
    assert decompress_chunk(chunks[0]) == medium_jpeg


def test_non_jpeg_falls_back_to_deflate_chunks():
    data = b"PLAIN TEXT DATA " * 200
    chunks = compress_chunked(data, 512)
    assert all(c.format == FORMAT_DEFLATE for c in chunks)
    assert decompress_file(chunks) == data


def test_corrupt_jpeg_falls_back():
    from repro.corpus.corruptions import truncate

    data = truncate(corpus_jpeg(seed=32, height=64, width=64), 0.5)
    chunks = compress_chunked(data, 256)
    assert all(c.format == FORMAT_DEFLATE for c in chunks)
    assert decompress_file(chunks) == data


def test_chunks_smaller_than_mcu_byte_span(medium_jpeg):
    """Pathologically small chunks (every boundary mid-MCU) still work."""
    chunks = compress_chunked(medium_jpeg, 64, LeptonConfig(threads=1))
    assert verify_chunks(medium_jpeg, chunks)


def test_stored_chunk_metadata(medium_jpeg):
    chunks = compress_chunked(medium_jpeg, 700)
    assert [c.index for c in chunks] == list(range(len(chunks)))
    assert sum(c.original_size for c in chunks) == len(medium_jpeg)


def test_grayscale_with_rst_chunked():
    data = corpus_jpeg(seed=33, height=96, width=96, grayscale=True,
                       restart_interval=2)
    chunks = compress_chunked(data, 500)
    assert verify_chunks(data, chunks)


def test_final_chunk_holding_only_the_pad_byte():
    """Regression (found by hypothesis): a chunk boundary can isolate the
    scan's final pad byte past the last MCU's indexed start offset; the
    start MCU must clamp to the last real MCU instead of planning an
    empty segment range."""
    data = corpus_jpeg(seed=137, height=52, width=15, quality=95,
                       grayscale=True, subsampling="4:4:4")
    chunks = compress_chunked(data, 232, LeptonConfig())
    assert all(c.format == "lepton" for c in chunks)
    assert verify_chunks(data, chunks)
    assert decompress_file(chunks) == data
