"""Property-based end-to-end invariants over randomly generated images.

The central theorem of the system: for every baseline JPEG our writer can
produce, ``decompress(compress(x)) == x`` — whole-file, any thread count,
and under any chunking.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.chunks import compress_chunked, verify_chunks
from repro.core.lepton import LeptonConfig, compress, decompress
from repro.corpus.images import synthetic_photo
from repro.jpeg.parser import parse_jpeg
from repro.jpeg.scan_decode import decode_scan
from repro.jpeg.scan_encode import encode_scan
from repro.jpeg.writer import encode_baseline_jpeg

_image_params = st.fixed_dictionaries(
    {
        "height": st.integers(8, 56),
        "width": st.integers(8, 56),
        "seed": st.integers(0, 10_000),
        "quality": st.integers(25, 97),
        "grayscale": st.booleans(),
        "subsampling": st.sampled_from(["4:4:4", "4:2:0"]),
        "restart_interval": st.sampled_from([0, 0, 1, 2, 5]),
    }
)


def _make_jpeg(params) -> bytes:
    pixels = synthetic_photo(
        params["height"], params["width"], seed=params["seed"],
        grayscale=params["grayscale"],
    )
    return encode_baseline_jpeg(
        pixels,
        quality=params["quality"],
        subsampling=params["subsampling"],
        restart_interval=params["restart_interval"],
    )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_image_params)
def test_scan_roundtrip_property(params):
    """Huffman scan decode→encode is byte-exact for every writer output."""
    data = _make_jpeg(params)
    img = parse_jpeg(data)
    decode_scan(img)
    scan, _ = encode_scan(img)
    assert scan == img.scan_data


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_image_params, st.integers(1, 8))
def test_lepton_roundtrip_property(params, threads):
    data = _make_jpeg(params)
    result = compress(data, LeptonConfig(threads=threads))
    assert result.ok
    assert decompress(result.payload) == data


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_image_params, st.integers(120, 2000))
def test_chunked_roundtrip_property(params, chunk_size):
    """Every chunking of every file: all chunks independently exact."""
    data = _make_jpeg(params)
    chunks = compress_chunked(data, chunk_size, LeptonConfig(threads=1))
    assert verify_chunks(data, chunks)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.binary(min_size=0, max_size=4096))
def test_arbitrary_bytes_always_recoverable(blob):
    """compress() totalises over arbitrary input via the Deflate fallback."""
    result = compress(blob)
    assert result.payload is not None
    assert decompress(result.payload) == blob
