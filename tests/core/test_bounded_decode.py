"""Row-bounded streaming decode: correctness and memory discipline (§1)."""

import tracemalloc

import numpy as np
import pytest

from repro.core.chunks import compress_chunked
from repro.core.decoder import decode_lepton_bounded
from repro.core.lepton import LeptonConfig, compress, decompress_bounded
from repro.core.rowbuffer import RowWindow, RowWindowError
from repro.corpus.builder import corpus_jpeg


class TestRowWindow:
    def test_basic_read_write(self):
        window = RowWindow(10, 4, window=3)
        window[0, 1] = np.arange(64)
        assert np.array_equal(window[0, 1], np.arange(64))

    def test_view_writes_stick(self):
        window = RowWindow(10, 4, window=3)
        view = window[1, 2]
        view[5] = 42
        assert window[1, 2][5] == 42

    def test_release_slides_window(self):
        window = RowWindow(10, 4, window=3)
        window[2, 0] = np.ones(64)
        window.release_below(2)
        window[4, 0] = np.ones(64)  # rows 2..4 now valid
        with pytest.raises(RowWindowError):
            window[1, 0]

    def test_released_rows_are_zeroed_on_reuse(self):
        window = RowWindow(10, 4, window=2)
        window[0, 0] = np.full(64, 7)
        window.release_below(1)
        # Row 2 reuses row 0's slot; it must read back as zeros.
        assert not window[2, 0].any()

    def test_access_past_window_fails_loudly(self):
        window = RowWindow(10, 4, window=2)
        with pytest.raises(RowWindowError):
            window[5, 0]

    def test_access_past_image_fails(self):
        window = RowWindow(3, 4, window=3)
        with pytest.raises(RowWindowError):
            window[3, 0]

    def test_shape_mimics_full_array(self):
        assert RowWindow(7, 5, window=4).shape == (7, 5, 64)

    def test_window_capped_at_image_height(self):
        assert RowWindow(2, 4, window=8).retained_rows == 2

    def test_minimum_window(self):
        with pytest.raises(ValueError):
            RowWindow(10, 4, window=1)

    def test_nbytes_reflects_window_not_image(self):
        small = RowWindow(1000, 8, window=4)
        assert small.nbytes == 4 * 8 * 64 * 4


@pytest.mark.parametrize("kwargs", [
    dict(height=96, width=128, quality=85),
    dict(height=64, width=80, quality=85, restart_interval=3),
    dict(height=48, width=56, grayscale=True),
    dict(height=37, width=61, quality=85),
], ids=["420", "rst", "gray", "odd"])
@pytest.mark.parametrize("threads", [1, 3])
def test_bounded_decode_byte_exact(kwargs, threads):
    data = corpus_jpeg(seed=95, **kwargs)
    payload = compress(data, LeptonConfig(threads=threads)).payload
    assert b"".join(decode_lepton_bounded(payload)) == data


def test_bounded_decode_of_chunk_containers():
    data = corpus_jpeg(seed=96, height=96, width=128, quality=85)
    chunks = compress_chunked(data, 600, LeptonConfig(threads=2))
    for chunk in chunks:
        a, b = chunk.original_range
        assert b"".join(decode_lepton_bounded(chunk.payload)) == data[a:b]


def test_bounded_matches_regular_decode():
    from repro.core.lepton import decompress

    data = corpus_jpeg(seed=97, height=64, width=96, restart_interval=4)
    payload = compress(data, LeptonConfig(threads=2)).payload
    assert b"".join(decode_lepton_bounded(payload)) == decompress(payload)


def test_decompress_bounded_handles_deflate_fallback():
    blob = b"not a jpeg" * 50
    result = compress(blob)
    assert b"".join(decompress_bounded(result.payload)) == blob


def test_working_set_scales_with_width_not_height():
    """The paper's memory claim: row-by-row decode keeps the working set
    roughly fixed as the image grows taller."""
    def peak(height):
        data = corpus_jpeg(seed=98, height=height, width=64, quality=85,
                           grayscale=True)
        payload = compress(data, LeptonConfig(threads=1)).payload
        tracemalloc.start()
        out = b"".join(decode_lepton_bounded(payload))
        _, pk = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(out) == len(data)
        return pk

    short, tall = peak(64), peak(256)
    # 4x the pixels must cost far less than 4x the memory (model bins and
    # the nnz grid still grow slowly with content).
    assert tall < short * 2.5


def test_bounded_yields_per_row_pieces():
    data = corpus_jpeg(seed=99, height=96, width=96, quality=85)
    payload = compress(data, LeptonConfig(threads=1)).payload
    pieces = list(decode_lepton_bounded(payload))
    # header + one piece per MCU row (some may be empty-trimmed) ≥ 4
    assert len(pieces) >= 4
    assert b"".join(pieces) == data
