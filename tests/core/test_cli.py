"""The ``lepton`` command-line tool."""

import pytest

from repro.cli import EXIT_STATUS, main
from repro.core.errors import ExitCode
from repro.corpus.builder import corpus_jpeg


@pytest.fixture()
def jpeg_path(tmp_path):
    path = tmp_path / "photo.jpg"
    path.write_bytes(corpus_jpeg(seed=50, height=48, width=48))
    return path


def test_compress_decompress_cycle(tmp_path, jpeg_path):
    lep = tmp_path / "photo.lep"
    out = tmp_path / "photo.out.jpg"
    assert main(["compress", str(jpeg_path), str(lep), "--quiet"]) == 0
    assert lep.stat().st_size < jpeg_path.stat().st_size
    assert main(["decompress", str(lep), str(out), "--quiet"]) == 0
    assert out.read_bytes() == jpeg_path.read_bytes()


def test_verify_command(jpeg_path):
    assert main(["verify", str(jpeg_path), "--quiet"]) == 0


def test_thread_override(tmp_path, jpeg_path):
    lep = tmp_path / "x.lep"
    assert main(["compress", str(jpeg_path), str(lep), "--threads", "4",
                 "--quiet"]) == 0


def test_reject_returns_nonzero_without_fallback(tmp_path):
    bad = tmp_path / "bad.bin"
    bad.write_bytes(b"not a jpeg")
    status = main(["compress", str(bad), "--no-fallback", "--quiet"])
    assert status == EXIT_STATUS[ExitCode.NOT_AN_IMAGE]


def test_reject_with_fallback_reports_code(tmp_path):
    bad = tmp_path / "bad.bin"
    bad.write_bytes(b"not a jpeg")
    out = tmp_path / "bad.z"
    status = main(["compress", str(bad), str(out), "--quiet"])
    assert status == EXIT_STATUS[ExitCode.NOT_AN_IMAGE]
    assert out.exists()


def test_stdout_output(tmp_path, jpeg_path, capsysbinary):
    assert main(["compress", str(jpeg_path), "-", "--quiet"]) == 0
    payload = capsysbinary.readouterr().out
    assert payload[:2] == b"\xCF\x84"


def test_decompress_streams_to_stdout(tmp_path, jpeg_path, capsysbinary):
    lep = tmp_path / "photo.lep"
    assert main(["compress", str(jpeg_path), str(lep), "--quiet"]) == 0
    assert main(["decompress", str(lep), "-", "--quiet"]) == 0
    assert capsysbinary.readouterr().out == jpeg_path.read_bytes()


def test_stdin_to_stdout_pipe(monkeypatch, jpeg_path, capsysbinary):
    """`lepton compress - -` and `lepton decompress - -`: the full pipe."""
    import io
    import sys
    from types import SimpleNamespace

    original = jpeg_path.read_bytes()
    monkeypatch.setattr(sys, "stdin", SimpleNamespace(buffer=io.BytesIO(original)))
    assert main(["compress", "-", "-", "--quiet"]) == 0
    payload = capsysbinary.readouterr().out
    assert payload[:2] == b"\xCF\x84"

    monkeypatch.setattr(sys, "stdin", SimpleNamespace(buffer=io.BytesIO(payload)))
    assert main(["decompress", "-", "-", "--quiet"]) == 0
    assert capsysbinary.readouterr().out == original


def test_decompress_reports_byte_counts(tmp_path, jpeg_path, capsys):
    lep = tmp_path / "photo.lep"
    out = tmp_path / "photo.out.jpg"
    assert main(["compress", str(jpeg_path), str(lep), "--quiet"]) == 0
    assert main(["decompress", str(lep), str(out)]) == 0
    err = capsys.readouterr().err
    original = jpeg_path.read_bytes()
    assert f"decoded {lep.stat().st_size} -> {len(original)} bytes" in err


def test_reject_without_fallback_creates_no_output_file(tmp_path):
    bad = tmp_path / "bad.bin"
    bad.write_bytes(b"not a jpeg")
    out = tmp_path / "bad.lep"
    status = main(["compress", str(bad), str(out), "--no-fallback", "--quiet"])
    assert status == EXIT_STATUS[ExitCode.NOT_AN_IMAGE]
    # The sink opens lazily: a reject that yields nothing leaves no file.
    assert not out.exists()


def test_qualify_clean_directory(tmp_path):
    for seed in range(3):
        data = corpus_jpeg(seed=300 + seed, height=40, width=40)
        (tmp_path / f"photo_{seed}.jpg").write_bytes(data)
    (tmp_path / "notes.txt").write_bytes(b"not a jpeg")  # skipped, not failed
    assert main(["qualify", str(tmp_path), "--quiet"]) == 0


def test_qualify_reports_counts(tmp_path, capsys):
    (tmp_path / "a.jpg").write_bytes(corpus_jpeg(seed=310, height=32, width=32))
    assert main(["qualify", str(tmp_path)]) == 0
    err = capsys.readouterr().err
    assert "QUALIFIED" in err


def test_allow_cmyk_flag(tmp_path):
    import numpy as np

    from repro.corpus.images import synthetic_photo
    from repro.jpeg.writer import encode_baseline_jpeg

    rgb = synthetic_photo(32, 32, seed=12)
    cmyk = np.concatenate(
        [rgb, np.full((32, 32, 1), 60, dtype=np.uint8)], axis=2
    )
    path = tmp_path / "print.jpg"
    path.write_bytes(encode_baseline_jpeg(cmyk, quality=85))
    out = tmp_path / "print.lep"
    # Production default: rejected (nonzero status without fallback)...
    assert main(["compress", str(path), "--no-fallback", "--quiet"]) != 0
    # ...extended path: compresses.
    assert main(["compress", str(path), str(out), "--allow-cmyk",
                 "--quiet"]) == 0


def test_exit_statuses_are_frozen():
    """Regression: exit statuses are part of the operational contract (the
    §6.2 tabulation and every wrapper script keys on them), so they are
    pinned numbers — not whatever ``enumerate(ExitCode)`` happens to yield.
    """
    assert EXIT_STATUS == {
        ExitCode.SUCCESS: 0,
        ExitCode.PROGRESSIVE: 1,
        ExitCode.UNSUPPORTED_JPEG: 2,
        ExitCode.NOT_AN_IMAGE: 3,
        ExitCode.CMYK: 4,
        ExitCode.DECODE_MEMORY_EXCEEDED: 5,
        ExitCode.ENCODE_MEMORY_EXCEEDED: 6,
        ExitCode.SERVER_SHUTDOWN: 7,
        ExitCode.IMPOSSIBLE: 8,
        ExitCode.ABORT_SIGNAL: 9,
        ExitCode.TIMEOUT: 10,
        ExitCode.CHROMA_SUBSAMPLE_BIG: 11,
        ExitCode.AC_OUT_OF_RANGE: 12,
        ExitCode.ROUNDTRIP_FAILED: 13,
        ExitCode.OOM_KILL: 14,
        ExitCode.OPERATOR_INTERRUPT: 15,
    }
    assert set(EXIT_STATUS) == set(ExitCode)


def test_stats_subcommand_prints_registry(jpeg_path, capsys):
    assert main(["stats", str(jpeg_path)]) == 0
    out = capsys.readouterr().out
    assert "lepton.compress.attempts counter 1" in out
    assert "lepton.compress.exit_codes{code=Success} counter 1" in out
    assert "lepton.compress.seconds histogram count=1" in out
    assert "span.lepton.encode.parse.wall_seconds histogram" in out
    assert "lepton.decompress.count{format=lepton} counter 1" in out


def test_stats_flag_on_any_command(tmp_path, jpeg_path, capsys):
    lep = tmp_path / "photo.lep"
    assert main(["compress", str(jpeg_path), str(lep), "--stats",
                 "--quiet"]) == 0
    err = capsys.readouterr().err
    assert "lepton.compress.attempts counter 1" in err


def test_trace_flag_exports_jsonl(tmp_path, jpeg_path):
    import json

    lep = tmp_path / "photo.lep"
    trace = tmp_path / "trace.jsonl"
    assert main(["compress", str(jpeg_path), str(lep), "--trace", str(trace),
                 "--quiet"]) == 0
    records = [json.loads(line) for line in trace.read_text().splitlines()]
    names = {r["name"] for r in records}
    assert "lepton.compress" in names
    assert "lepton.encode.code_segment" in names
    compress_span = next(r for r in records if r["name"] == "lepton.compress")
    assert compress_span["depth"] == 0 and "wall_ms" in compress_span
