"""The VP8-style range coder: exactness, compression, robustness."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bool_coder import BoolDecoder, BoolEncoder


class TestRoundtrip:
    def test_empty_stream(self):
        data = BoolEncoder().finish()
        assert len(data) == 4  # the flush bytes

    def test_single_bit_each_value(self):
        for bit in (0, 1):
            enc = BoolEncoder()
            enc.put(bit, 128)
            dec = BoolDecoder(enc.finish())
            assert dec.get(128) == bit

    def test_alternating_bits(self):
        bits = [i % 2 for i in range(500)]
        enc = BoolEncoder()
        for b in bits:
            enc.put(b, 128)
        dec = BoolDecoder(enc.finish())
        assert [dec.get(128) for _ in bits] == bits

    def test_extreme_probabilities(self):
        """prob=1 and prob=255 are the adaptive model's saturation points."""
        pattern = [0] * 300 + [1] * 300 + [0, 1] * 50
        for prob in (1, 255):
            enc = BoolEncoder()
            for b in pattern:
                enc.put(b, prob)
            dec = BoolDecoder(enc.finish())
            assert [dec.get(prob) for _ in pattern] == pattern

    def test_carry_propagation_stress(self):
        """Improbable bits under extreme probs maximise carry events."""
        enc = BoolEncoder()
        for _ in range(2000):
            enc.put(1, 255)  # always the 'wrong' (improbable) branch
        data = enc.finish()
        dec = BoolDecoder(data)
        assert all(dec.get(255) == 1 for _ in range(2000))

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(1, 255)),
                    max_size=400))
    def test_roundtrip_property(self, pairs):
        enc = BoolEncoder()
        for bit, prob in pairs:
            enc.put(bit, prob)
        dec = BoolDecoder(enc.finish())
        assert [dec.get(p) for _, p in pairs] == [b for b, _ in pairs]


class TestCompression:
    def test_skewed_stream_compresses(self):
        enc = BoolEncoder()
        for _ in range(10_000):
            enc.put(0, 250)
        assert len(enc.finish()) < 10_000 / 8 / 5  # ≫5x vs raw bits

    def test_uniform_stream_does_not_compress(self):
        rng = random.Random(7)
        enc = BoolEncoder()
        n = 8000
        for _ in range(n):
            enc.put(rng.randint(0, 1), 128)
        size = len(enc.finish())
        assert size >= n / 8 - 2  # entropy limit: can't beat 1 bit/bit

    def test_cost_tracks_probability(self):
        """Better-matched probabilities yield smaller output."""
        bits = [0] * 900 + [1] * 100
        sizes = {}
        for prob in (128, 230):
            enc = BoolEncoder()
            for b in bits:
                enc.put(b, prob)
            sizes[prob] = len(enc.finish())
        assert sizes[230] < sizes[128]


class TestRobustness:
    def test_truncated_stream_returns_bits_not_crash(self):
        enc = BoolEncoder()
        for i in range(100):
            enc.put(i % 2, 128)
        data = enc.finish()[: 3]
        dec = BoolDecoder(data)
        out = [dec.get(128) for _ in range(100)]  # garbage but no exception
        assert len(out) == 100
        assert set(out) <= {0, 1}

    def test_empty_input_decodes_zeros(self):
        dec = BoolDecoder(b"")
        assert dec.get(128) in (0, 1)

    def test_decoder_window(self):
        """start/end restrict the decoder to a slice of a larger buffer."""
        enc = BoolEncoder()
        for _ in range(64):
            enc.put(1, 20)
        coded = enc.finish()
        framed = b"JUNK" + coded + b"MORE"
        dec = BoolDecoder(framed, start=4, end=4 + len(coded))
        assert all(dec.get(20) == 1 for _ in range(64))

    def test_consumed_tracks_position(self):
        enc = BoolEncoder()
        for _ in range(256):
            enc.put(0, 128)
        coded = enc.finish()
        dec = BoolDecoder(coded)
        for _ in range(256):
            dec.get(128)
        assert dec.consumed <= len(coded)
