"""Container format: handover words, serialisation, corruption handling."""

import struct

import pytest

from repro.core.errors import FormatError, VersionError
from repro.core.format import (
    GIT_REVISION,
    MAGIC,
    LeptonFile,
    SegmentRecord,
    read_container,
    write_container,
)
from repro.core.handover import HandoverWord


def _handover(mcu=0, dc=(5, -3, 12)):
    return HandoverWord(mcu=mcu, partial_byte=0xA0, partial_bits=3,
                        dc_pred=dc, rst_emitted=2)


def _sample_file(n_segments=2, data_size=600):
    segments = []
    mcus_per = 10
    for i in range(n_segments):
        segments.append(
            SegmentRecord(
                i * mcus_per, (i + 1) * mcus_per,
                _handover(mcu=i * mcus_per),
                bytes([i]) * (data_size + i * 37),
            )
        )
    return LeptonFile(
        jpeg_header=b"\xFF\xD8HEADER-BYTES",
        pad_bit=1,
        rst_count=4,
        output_size=12_345,
        prefix_offset=0,
        prefix_length=14,
        trailer=b"\xFF\xD9tail",
        scan_skip=3,
        scan_take=1200,
        pad_final=True,
        segments=segments,
    )


class TestHandoverWord:
    def test_pack_unpack_roundtrip(self):
        word = _handover()
        unpacked, offset = HandoverWord.unpack(word.pack())
        assert unpacked == word
        assert offset == len(word.pack())

    def test_unpack_with_offset(self):
        word = _handover(dc=(7,))
        blob = b"xyz" + word.pack() + b"rest"
        unpacked, offset = HandoverWord.unpack(blob, 3)
        assert unpacked == word
        assert blob[offset:] == b"rest"

    def test_truncated_rejected(self):
        with pytest.raises(FormatError):
            HandoverWord.unpack(b"\x00\x01")

    def test_bad_partial_bits_rejected(self):
        word = _handover()
        blob = bytearray(word.pack())
        blob[5] = 9  # partial_bits field
        with pytest.raises(FormatError):
            HandoverWord.unpack(bytes(blob))

    def test_negative_dc_preserved(self):
        word = HandoverWord(0, 0, 0, (-30_000, 30_000), 0)
        assert HandoverWord.unpack(word.pack())[0].dc_pred == (-30_000, 30_000)

    def test_from_position(self):
        from repro.jpeg.scan_encode import ScanPosition

        pos = ScanPosition(7, 100, 0x80, 1, (1, 2, 3), 5)
        word = HandoverWord.from_position(pos)
        assert (word.mcu, word.partial_byte, word.rst_emitted) == (7, 0x80, 5)


class TestContainer:
    def test_roundtrip(self):
        original = _sample_file()
        parsed = read_container(write_container(original))
        assert parsed.jpeg_header == original.jpeg_header
        assert parsed.pad_bit == original.pad_bit
        assert parsed.rst_count == original.rst_count
        assert parsed.output_size == original.output_size
        assert parsed.scan_skip == original.scan_skip
        assert parsed.scan_take == original.scan_take
        assert parsed.pad_final == original.pad_final
        assert len(parsed.segments) == 2
        for got, want in zip(parsed.segments, original.segments):
            assert got.mcu_start == want.mcu_start
            assert got.mcu_end == want.mcu_end
            assert got.handover == want.handover
            assert got.data == want.data

    def test_magic_and_version_bytes(self):
        payload = write_container(_sample_file())
        assert payload[:2] == MAGIC
        assert payload[2] == 1
        assert payload[3] == ord("Z")

    def test_git_revision_embedded(self):
        payload = write_container(_sample_file())
        assert GIT_REVISION in payload[:20]

    def test_interleaving_round_robins_segments(self):
        payload = write_container(_sample_file(data_size=10_000),
                                  interleave_slice=256)
        # Section headers alternate between segment ids 0 and 1 initially.
        offset = 28 + struct.unpack_from("<I", payload, 24)[0]
        first_ids = []
        for _ in range(4):
            sid, length = struct.unpack_from("<BI", payload, offset)
            first_ids.append(sid)
            offset += 5 + length
        assert first_ids == [0, 1, 0, 1]

    def test_zero_segments_allowed(self):
        """Header-only chunks carry no arithmetic sections."""
        empty = _sample_file(n_segments=0)
        empty.segments = []
        parsed = read_container(write_container(empty))
        assert parsed.segments == []

    def test_prefix_slice_view(self):
        lf = _sample_file()
        lf.prefix_offset, lf.prefix_length = 2, 6
        assert lf.prefix == lf.jpeg_header[2:8]


class TestContainerCorruption:
    def test_bad_magic(self):
        payload = bytearray(write_container(_sample_file()))
        payload[0] = 0x00
        with pytest.raises(FormatError):
            read_container(bytes(payload))

    def test_unknown_version_raises_version_error(self):
        """§6.7: an old decoder meeting a newer format must fail loudly."""
        payload = bytearray(write_container(_sample_file()))
        payload[2] = 9
        with pytest.raises(VersionError) as exc:
            read_container(bytes(payload))
        assert exc.value.found == 9

    def test_truncated_zlib_section(self):
        payload = write_container(_sample_file())
        with pytest.raises(FormatError):
            read_container(payload[:40])

    def test_corrupt_zlib_payload(self):
        payload = bytearray(write_container(_sample_file()))
        payload[30] ^= 0xFF
        with pytest.raises(FormatError):
            read_container(bytes(payload))

    def test_truncated_section_payload(self):
        payload = write_container(_sample_file())
        with pytest.raises(FormatError):
            read_container(payload[:-20])

    def test_section_size_mismatch_detected(self):
        payload = write_container(_sample_file())
        # Drop the final section entirely → per-segment size check fires.
        offset = 28 + struct.unpack_from("<I", payload, 24)[0]
        sections = []
        pos = offset
        while pos < len(payload):
            sid, length = struct.unpack_from("<BI", payload, pos)
            sections.append((pos, 5 + length))
            pos += 5 + length
        start, _ = sections[-1]
        with pytest.raises(FormatError):
            read_container(payload[:start])

    def test_implausible_segment_count(self):
        payload = bytearray(write_container(_sample_file()))
        payload[4:8] = struct.pack("<I", 1000)
        with pytest.raises(FormatError):
            read_container(bytes(payload))
