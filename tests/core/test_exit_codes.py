"""§6.2 exit-code classification and resource limits."""

import zlib

import pytest

from repro.core.errors import ExitCode
from repro.core.lepton import (
    FORMAT_DEFLATE,
    LeptonConfig,
    compress,
    decompress,
)
from repro.corpus import corruptions
from repro.corpus.builder import corpus_jpeg


@pytest.fixture(scope="module")
def base_jpeg():
    return corpus_jpeg(seed=40, height=64, width=64, quality=85)


class TestClassification:
    def test_success(self, base_jpeg):
        assert compress(base_jpeg).exit_code is ExitCode.SUCCESS

    def test_progressive(self, base_jpeg):
        result = compress(corruptions.make_progressive(base_jpeg))
        assert result.exit_code is ExitCode.PROGRESSIVE

    def test_arithmetic_coded_unsupported(self, base_jpeg):
        result = compress(corruptions.make_arithmetic(base_jpeg))
        assert result.exit_code is ExitCode.UNSUPPORTED_JPEG

    def test_cmyk(self):
        assert compress(corruptions.make_cmyk()).exit_code is ExitCode.CMYK

    def test_not_an_image_random_bytes_with_soi(self):
        result = compress(corruptions.not_an_image(seed=1))
        assert result.exit_code is ExitCode.NOT_AN_IMAGE

    def test_not_an_image_no_soi(self):
        result = compress(b"hello world, definitely text")
        assert result.exit_code is ExitCode.NOT_AN_IMAGE

    def test_header_only_unsupported(self, base_jpeg):
        result = compress(corruptions.make_header_only(base_jpeg))
        assert result.exit_code in (ExitCode.UNSUPPORTED_JPEG, ExitCode.NOT_AN_IMAGE)

    def test_truncated_unsupported(self, base_jpeg):
        result = compress(corruptions.truncate(base_jpeg, 0.5))
        assert result.exit_code is not ExitCode.SUCCESS

    def test_big_sampling_factors(self, base_jpeg):
        idx = base_jpeg.find(bytes([0xFF, 0xC0]))
        data = bytearray(base_jpeg)
        data[idx + 11] = 0x33
        result = compress(bytes(data))
        assert result.exit_code is ExitCode.CHROMA_SUBSAMPLE_BIG


class TestFallback:
    def test_rejects_stored_as_deflate(self, base_jpeg):
        data = corruptions.make_progressive(base_jpeg)
        result = compress(data)
        assert result.format == FORMAT_DEFLATE
        assert decompress(result.payload) == data

    def test_fallback_payload_is_plain_zlib(self):
        result = compress(b"some text")
        assert zlib.decompress(result.payload) == b"some text"

    def test_detail_explains_rejection(self, base_jpeg):
        result = compress(corruptions.make_progressive(base_jpeg))
        assert "progressive" in result.detail.lower()


class TestResourceLimits:
    def test_decode_memory_limit(self, base_jpeg):
        config = LeptonConfig(decode_memory_limit=1024)
        result = compress(base_jpeg, config)
        assert result.exit_code is ExitCode.DECODE_MEMORY_EXCEEDED
        assert result.format == FORMAT_DEFLATE

    def test_encode_memory_limit(self, base_jpeg):
        config = LeptonConfig(decode_memory_limit=None, encode_memory_limit=1024)
        result = compress(base_jpeg, config)
        assert result.exit_code is ExitCode.ENCODE_MEMORY_EXCEEDED

    def test_production_limits_pass_small_files(self, base_jpeg):
        result = compress(base_jpeg, LeptonConfig())  # 24 MiB / 178 MiB
        assert result.ok

    def test_timeout(self, base_jpeg):
        config = LeptonConfig(timeout_seconds=0.0)
        result = compress(base_jpeg, config)
        assert result.exit_code is ExitCode.TIMEOUT

    def test_no_timeout_by_default(self, base_jpeg):
        assert compress(base_jpeg).exit_code is ExitCode.SUCCESS


class TestExitCodeEnum:
    def test_paper_labels(self):
        assert ExitCode.DECODE_MEMORY_EXCEEDED.value == ">24 MiB mem decode"
        assert ExitCode.ROUNDTRIP_FAILED.value == "Roundtrip failed"

    def test_only_success_is_success(self):
        assert ExitCode.SUCCESS.is_success
        assert sum(1 for c in ExitCode if c.is_success) == 1
