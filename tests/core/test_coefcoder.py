"""Coefficient coding: value codes, counters, and segment codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bool_coder import BoolDecoder, BoolEncoder
from repro.core.coefcoder import (
    DecodeIO,
    EncodeIO,
    SegmentCodec,
    code_counter,
    code_value,
)
from repro.core.errors import ValueOutOfRange
from repro.core.model import Model, ModelConfig
from repro.jpeg.parser import parse_jpeg
from repro.jpeg.scan_decode import decode_scan


def _roundtrip_values(values, max_exp=14):
    enc = BoolEncoder()
    io = EncodeIO(Model(), enc)
    for v in values:
        code_value(io, ("t",), v, max_exp=max_exp)
    dec = BoolDecoder(enc.finish())
    io = DecodeIO(Model(), dec)
    return [code_value(io, ("t",), max_exp=max_exp) for _ in values]


class TestCodeValue:
    def test_zero(self):
        assert _roundtrip_values([0]) == [0]

    def test_small_values(self):
        values = [0, 1, -1, 2, -2, 3, -3]
        assert _roundtrip_values(values) == values

    def test_extremes(self):
        values = [1023, -1023, 4095, -4095, (1 << 13) - 1, -((1 << 13) - 1)]
        assert _roundtrip_values(values) == values

    def test_max_exponent_boundary(self):
        """Values whose exponent equals the cap omit the terminator bit."""
        values = [(1 << 13), (1 << 14) - 1, -(1 << 13)]
        assert _roundtrip_values(values, max_exp=14) == values

    def test_over_cap_raises(self):
        with pytest.raises(ValueOutOfRange):
            _roundtrip_values([1 << 14], max_exp=14)

    def test_mixed_sequence_with_adaptation(self):
        values = [3, 3, 3, 3, -3, 7, 0, 0, 0, 12, -120, 1]
        assert _roundtrip_values(values) == values

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(-4000, 4000), max_size=80))
    def test_roundtrip_property(self, values):
        assert _roundtrip_values(values) == values


class TestCodeCounter:
    @pytest.mark.parametrize("value", [0, 1, 31, 49, 63])
    def test_six_bit_counter(self, value):
        enc = BoolEncoder()
        io = EncodeIO(Model(), enc)
        code_counter(io, ("n",), 6, value)
        dec_io = DecodeIO(Model(), BoolDecoder(enc.finish()))
        assert code_counter(dec_io, ("n",), 6) == value

    def test_tree_contexts_distinct_per_prefix(self):
        model = Model()
        io = EncodeIO(model, BoolEncoder())
        code_counter(io, ("n",), 3, 0b101)
        # Bits at positions 2,1,0 with prefixes (0, 1, 0b10) → 3 bins.
        assert model.bin_count == 3


def _random_coefficients(frame, seed, sparsity=0.8):
    """Plausible random coefficient arrays for a frame."""
    rng = np.random.default_rng(seed)
    arrays = []
    for comp in frame.components:
        arr = rng.integers(-60, 60, (comp.blocks_h, comp.blocks_w, 64))
        mask = rng.random(arr.shape) < sparsity
        arr[mask] = 0
        arr[:, :, 0] = rng.integers(-300, 300, (comp.blocks_h, comp.blocks_w))
        arrays.append(arr.astype(np.int32))
    return arrays


class TestSegmentCodec:
    @pytest.fixture(scope="class")
    def parsed(self, small_jpeg):
        img = parse_jpeg(small_jpeg)
        decode_scan(img)
        return img

    def _roundtrip(self, img, coefficients, mcu_start, mcu_end, config=None):
        config = config or ModelConfig()
        enc = BoolEncoder()
        SegmentCodec(img.frame, img.quant_tables, coefficients, config).encode(
            enc, mcu_start, mcu_end
        )
        out = [np.zeros_like(c) for c in coefficients]
        SegmentCodec(img.frame, img.quant_tables, out, config).decode(
            BoolDecoder(enc.finish()), mcu_start, mcu_end
        )
        return out

    def test_real_coefficients_roundtrip(self, parsed):
        out = self._roundtrip(parsed, parsed.coefficients, 0, parsed.frame.mcu_count)
        for got, want in zip(out, parsed.coefficients):
            assert np.array_equal(got, want)

    def test_random_coefficients_roundtrip(self, parsed):
        coeffs = _random_coefficients(parsed.frame, seed=5)
        out = self._roundtrip(parsed, coeffs, 0, parsed.frame.mcu_count)
        for got, want in zip(out, coeffs):
            assert np.array_equal(got, want)

    def test_partial_range_decodes_only_that_range(self, parsed):
        frame = parsed.frame
        half = (frame.mcus_y // 2) * frame.mcus_x
        out = self._roundtrip(parsed, parsed.coefficients, half, frame.mcu_count)
        luma_rows = (frame.mcus_y // 2) * frame.components[0].v
        assert np.array_equal(
            out[0][luma_rows:], parsed.coefficients[0][luma_rows:]
        )
        assert not out[0][:luma_rows].any()  # untouched region stays zero

    def test_segment_decode_without_earlier_segment(self, parsed):
        """A later segment must decode standalone: its model and contexts
        must not depend on segment-0 data (the multithreading invariant)."""
        frame = parsed.frame
        half = (frame.mcus_y // 2) * frame.mcus_x
        enc = BoolEncoder()
        SegmentCodec(frame, parsed.quant_tables, parsed.coefficients).encode(
            enc, half, frame.mcu_count
        )
        # Decoder sees ONLY zeros for segment 0's rows.
        out = [np.zeros_like(c) for c in parsed.coefficients]
        SegmentCodec(frame, parsed.quant_tables, out).decode(
            BoolDecoder(enc.finish()), half, frame.mcu_count
        )
        luma_rows = (frame.mcus_y // 2) * frame.components[0].v
        assert np.array_equal(out[0][luma_rows:], parsed.coefficients[0][luma_rows:])

    def test_mid_row_start_roundtrip(self, parsed):
        """Chunk boundaries can start a segment mid-MCU-row."""
        frame = parsed.frame
        start = frame.mcus_x + frame.mcus_x // 2  # middle of row 1
        out = self._roundtrip(parsed, parsed.coefficients, start, frame.mcu_count)
        for ci, comp in enumerate(frame.components):
            factor = comp.v if frame.interleaved else 1
            got = out[ci][2 * factor :]
            want = parsed.coefficients[ci][2 * factor :]
            assert np.array_equal(got, want)

    @pytest.mark.parametrize("edge_mode,dc_mode", [
        ("lakhani", "gradient"),
        ("avg", "gradient"),
        ("lakhani", "median8"),
        ("avg", "packjpg"),
    ])
    def test_all_model_configs_roundtrip(self, parsed, edge_mode, dc_mode):
        config = ModelConfig(edge_mode=edge_mode, dc_mode=dc_mode)
        out = self._roundtrip(
            parsed, parsed.coefficients, 0, parsed.frame.mcu_count, config
        )
        for got, want in zip(out, parsed.coefficients):
            assert np.array_equal(got, want)

    def test_lakhani_beats_avg_on_smooth_images(self, parsed):
        """§4.3: edge prediction contributes real savings."""
        sizes = {}
        for mode in ("lakhani", "avg"):
            enc = BoolEncoder()
            SegmentCodec(
                parsed.frame, parsed.quant_tables, parsed.coefficients,
                ModelConfig(edge_mode=mode),
            ).encode(enc, 0, parsed.frame.mcu_count)
            sizes[mode] = len(enc.finish())
        assert sizes["lakhani"] < sizes["avg"]

    def test_gradient_beats_packjpg_dc(self, parsed):
        sizes = {}
        for mode in ("gradient", "packjpg"):
            enc = BoolEncoder()
            SegmentCodec(
                parsed.frame, parsed.quant_tables, parsed.coefficients,
                ModelConfig(dc_mode=mode),
            ).encode(enc, 0, parsed.frame.mcu_count)
            sizes[mode] = len(enc.finish())
        assert sizes["gradient"] < sizes["packjpg"]

    def test_bit_cost_accounting_sums_to_output(self, parsed):
        codec = SegmentCodec(parsed.frame, parsed.quant_tables, parsed.coefficients)
        enc = BoolEncoder()
        codec.encode(enc, 0, parsed.frame.mcu_count)
        coded_bits = len(enc.finish()) * 8
        charged = sum(codec.model.bit_costs.values())
        # Information content matches actual output within coder overhead.
        assert charged == pytest.approx(coded_bits, rel=0.05, abs=64)
