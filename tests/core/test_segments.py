"""Thread-segment planning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segments import (
    DEFAULT_THREAD_CUTOFFS,
    choose_thread_count,
    plan_segments,
    plan_segments_range,
)


class TestThreadCutoffs:
    @pytest.mark.parametrize("size,expected", [
        (1_000, 1),
        (64 * 1024 - 1, 1),
        (64 * 1024, 2),
        (256 * 1024, 4),
        (1024 * 1024, 8),
        (4 * 1024 * 1024, 8),
    ])
    def test_size_cutoffs(self, size, expected):
        assert choose_thread_count(size) == expected

    def test_custom_cutoffs(self):
        cutoffs = ((100, 1), (None, 3))
        assert choose_thread_count(50, cutoffs) == 1
        assert choose_thread_count(100, cutoffs) == 3


class TestPlanSegments:
    def test_single_thread_covers_everything(self):
        assert plan_segments(10, 4, 1) == [(0, 40)]

    def test_even_split(self):
        assert plan_segments(8, 2, 4) == [(0, 4), (4, 8), (8, 12), (12, 16)]

    def test_uneven_split_front_loads_remainder(self):
        segs = plan_segments(5, 3, 2)
        assert segs == [(0, 9), (9, 15)]

    def test_more_threads_than_rows_capped(self):
        segs = plan_segments(3, 4, 8)
        assert len(segs) == 3

    def test_threads_capped_at_max(self):
        assert len(plan_segments(100, 1, 99)) == 8

    def test_no_mcus_rejected(self):
        with pytest.raises(ValueError):
            plan_segments(0, 4, 2)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(1, 60), st.integers(1, 20), st.integers(1, 12))
    def test_partition_properties(self, rows, mcus_x, threads):
        segs = plan_segments(rows, mcus_x, threads)
        # Contiguous, non-empty, covering, row-aligned.
        assert segs[0][0] == 0
        assert segs[-1][1] == rows * mcus_x
        for (a, b), (c, _) in zip(segs, segs[1:]):
            assert b == c
        for a, b in segs:
            assert b > a
            assert a % mcus_x == 0
            assert b % mcus_x == 0


class TestPlanSegmentsRange:
    def test_full_range_matches_plan_segments(self):
        assert plan_segments_range(0, 40, 4, 2) == plan_segments(10, 4, 2)

    def test_partial_rows_absorbed_at_ends(self):
        segs = plan_segments_range(3, 37, 8, 2)
        assert segs[0][0] == 3
        assert segs[-1][1] == 37
        # Interior boundaries are row-aligned.
        for _, b in segs[:-1]:
            assert b % 8 == 0

    def test_tiny_range_single_segment(self):
        assert plan_segments_range(5, 7, 8, 4) == [(5, 7)]

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            plan_segments_range(5, 5, 8, 2)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 200), st.integers(1, 100), st.integers(1, 16),
           st.integers(1, 10))
    def test_range_partition_properties(self, start, length, mcus_x, threads):
        end = start + length
        segs = plan_segments_range(start, end, mcus_x, threads)
        assert segs[0][0] == start
        assert segs[-1][1] == end
        for (a, b), (c, _) in zip(segs, segs[1:]):
            assert b == c
        assert all(b > a for a, b in segs)
