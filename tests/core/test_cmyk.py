"""Optional 4-component (CMYK) support — §6.2's intentionally-disabled path."""

import numpy as np
import pytest

from repro.core.chunks import compress_chunked, verify_chunks
from repro.core.errors import ExitCode
from repro.core.lepton import (
    FORMAT_DEFLATE,
    FORMAT_LEPTON,
    LeptonConfig,
    compress,
    decompress,
)
from repro.corpus.images import synthetic_photo
from repro.jpeg.parser import parse_jpeg
from repro.jpeg.scan_decode import decode_scan
from repro.jpeg.scan_encode import encode_scan
from repro.jpeg.writer import encode_baseline_jpeg


@pytest.fixture(scope="module")
def cmyk_jpeg() -> bytes:
    rgb = synthetic_photo(48, 64, seed=11)
    k = np.clip(255 - rgb.mean(axis=2, keepdims=True) * 0.5, 0, 255)
    cmyk = np.concatenate([rgb, k.astype(np.uint8)], axis=2)
    return encode_baseline_jpeg(cmyk, quality=85)


class TestParsing:
    def test_default_parse_rejects(self, cmyk_jpeg):
        from repro.jpeg.errors import UnsupportedJpegError

        with pytest.raises(UnsupportedJpegError) as exc:
            parse_jpeg(cmyk_jpeg)
        assert exc.value.reason == "cmyk"

    def test_extended_parse_accepts(self, cmyk_jpeg):
        img = parse_jpeg(cmyk_jpeg, max_components=4)
        assert len(img.frame.components) == 4

    def test_scan_roundtrips_byte_exactly(self, cmyk_jpeg):
        img = parse_jpeg(cmyk_jpeg, max_components=4)
        decode_scan(img)
        scan, _ = encode_scan(img)
        assert scan == img.scan_data

    def test_five_components_still_rejected(self, cmyk_jpeg):
        idx = cmyk_jpeg.find(bytes([0xFF, 0xC0]))
        patched = bytearray(cmyk_jpeg)
        patched[idx + 9] = 5
        from repro.jpeg.errors import JpegError

        with pytest.raises(JpegError):
            parse_jpeg(bytes(patched), max_components=4)


class TestLepton:
    def test_production_config_rejects_with_cmyk_code(self, cmyk_jpeg):
        result = compress(cmyk_jpeg)
        assert result.exit_code is ExitCode.CMYK
        assert result.format == FORMAT_DEFLATE
        assert decompress(result.payload) == cmyk_jpeg

    def test_extended_config_compresses(self, cmyk_jpeg):
        result = compress(cmyk_jpeg, LeptonConfig(allow_cmyk=True, threads=1))
        assert result.ok
        assert result.format == FORMAT_LEPTON
        assert result.savings_fraction > 0.02
        assert decompress(result.payload) == cmyk_jpeg

    def test_multithreaded_cmyk(self, cmyk_jpeg):
        result = compress(cmyk_jpeg, LeptonConfig(allow_cmyk=True, threads=4))
        assert result.ok
        assert decompress(result.payload) == cmyk_jpeg

    def test_handover_carries_four_dc_channels(self, cmyk_jpeg):
        from repro.core.format import read_container

        result = compress(cmyk_jpeg, LeptonConfig(allow_cmyk=True, threads=2))
        parsed = read_container(result.payload)
        assert all(len(s.handover.dc_pred) == 4 for s in parsed.segments)

    def test_chunked_cmyk(self, cmyk_jpeg):
        chunks = compress_chunked(cmyk_jpeg, 600,
                                  LeptonConfig(allow_cmyk=True, threads=1))
        assert all(c.format == FORMAT_LEPTON for c in chunks)
        assert verify_chunks(cmyk_jpeg, chunks)

    def test_chunked_cmyk_without_flag_falls_back(self, cmyk_jpeg):
        chunks = compress_chunked(cmyk_jpeg, 600, LeptonConfig())
        assert all(c.format == FORMAT_DEFLATE for c in chunks)

    def test_bounded_decode_cmyk(self, cmyk_jpeg):
        from repro.core.decoder import decode_lepton_bounded

        result = compress(cmyk_jpeg, LeptonConfig(allow_cmyk=True, threads=2))
        assert b"".join(decode_lepton_bounded(result.payload)) == cmyk_jpeg
