"""`lepton chaos`: byte-reproducible availability/durability reports."""

import json

import pytest

from repro.cli import main
from repro.faults.plan import FaultPlan

ARGS = ["chaos", "--seed", "3", "--hours", "0.05", "--reads", "20"]


def _run(capsys, argv):
    code = main(argv)
    return code, capsys.readouterr().out


@pytest.mark.chaos
class TestChaosCommand:
    def test_same_seed_byte_identical_report(self, capsys):
        code_a, out_a = _run(capsys, ARGS)
        code_b, out_b = _run(capsys, ARGS)
        assert code_a == code_b == 0
        assert out_a == out_b
        assert out_a.endswith("\n")
        assert "availability" in out_a

    def test_json_mode_parses_and_repeats(self, capsys):
        code_a, out_a = _run(capsys, ARGS + ["--json"])
        code_b, out_b = _run(capsys, ARGS + ["--json"])
        assert code_a == 0
        assert out_a == out_b
        report = json.loads(out_a)
        assert report["seed"] == 3
        assert report["storage"]["wrong_bytes"] == 0

    def test_plan_file_round_trips(self, capsys, tmp_path):
        plan = FaultPlan.generate(seed=11, duration=0.05 * 3600.0,
                                  crashes=1, slowdowns=1, network_windows=0)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        argv = ARGS + ["--plan", str(path), "--json"]
        code, out = _run(capsys, argv)
        assert code == 0
        report = json.loads(out)
        assert report["plan"]["crashes"] == 1
        assert report["plan"]["slowdowns"] == 1

    def test_no_policies_flag_degrades_availability(self, capsys):
        code_on, out_on = _run(capsys, ARGS + ["--json"])
        code_off, out_off = _run(capsys, ARGS + ["--no-policies", "--json"])
        assert code_on == 0 and code_off == 0
        on = json.loads(out_on)
        off = json.loads(out_off)
        assert (float(on["fleet"]["availability"])
                >= float(off["fleet"]["availability"]))
