"""RetryPolicy backoff/deadline and circuit-breaker state machine."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.storage.retry import (
    BreakerBoard,
    BreakerState,
    CircuitBreaker,
    RetryPolicy,
)
from repro.storage.simclock import SimClock


class TestRetryPolicy:
    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)  # first try + two retries = 3

    def test_deadline_budget_trumps_attempts(self):
        policy = RetryPolicy(max_attempts=10, deadline=30.0)
        assert policy.should_retry(1, elapsed=29.9)
        assert not policy.should_retry(1, elapsed=30.0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=5.0,
                             jitter=0.0)
        assert policy.backoff(1) == 1.0
        assert policy.backoff(2) == 2.0
        assert policy.backoff(3) == 4.0
        assert policy.backoff(4) == 5.0  # capped

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5)
        a = policy.backoff(1, np.random.default_rng(0))
        b = policy.backoff(1, np.random.default_rng(0))
        assert a == b  # same seed, same jitter
        for seed in range(20):
            delay = policy.backoff(1, np.random.default_rng(seed))
            assert 0.5 <= delay <= 1.5

    def test_attempt_numbers_are_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(now=0.0)
        breaker.record_failure(now=1.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(now=2.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        assert not breaker.allow(now=3.0)

    def test_half_open_after_reset_timeout(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        breaker.record_failure(now=0.0)
        assert not breaker.allow(now=59.0)
        assert breaker.allow(now=60.0)  # the probe
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure(now=0.0)
        breaker.allow(now=10.0)
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.failures == 0

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0)
        for t in range(3):
            breaker.record_failure(now=float(t))
        breaker.allow(now=12.0)  # HALF_OPEN
        breaker.record_failure(now=12.5)  # one failure re-opens
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        assert not breaker.allow(now=13.0)

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(now=0.0)
        breaker.record_failure(now=1.0)
        breaker.record_success()
        breaker.record_failure(now=2.0)
        assert breaker.state is BreakerState.CLOSED


class TestBreakerBoard:
    def test_breakers_are_per_target(self):
        clock = SimClock()
        board = BreakerBoard(clock, CircuitBreaker(failure_threshold=1),
                             registry=MetricsRegistry())
        board.failure(1)
        assert not board.allow(1)
        assert board.allow(2)  # server 2 unaffected
        assert board.open_count() == 1
        assert board.trip_count() == 1

    def test_state_gauge_and_trip_counter(self):
        clock = SimClock()
        registry = MetricsRegistry()
        board = BreakerBoard(clock, CircuitBreaker(failure_threshold=1),
                             registry=registry)
        board.failure(7)
        assert registry.gauge("breaker.state", server=7).value == 1  # OPEN
        assert registry.counter("breaker.trips", server=7).value == 1
        board.success(7)
        assert registry.gauge("breaker.state", server=7).value == 0
