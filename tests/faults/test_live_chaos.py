"""The live kill-and-recover drill: real processes, real SIGKILL.

The in-process chaos suite proves the *logic* recovers; this one proves
the *deployment* does — ``repro.faults.livechaos`` boots genuine
``lepton serve`` subprocesses, SIGKILLs them at armed kill points
mid-upload and mid-stream, restarts over the same data directory, and
demands every acknowledged byte back.  Marked ``live_chaos`` because it
forks servers and sleeps through restarts: run with ``-m live_chaos``
or ``make live-chaos`` (the full 17-point sweep is ``lepton chaos
--live``).

The report tests below are plain unit tests (no subprocesses): the
rendered output must be byte-reproducible for a seed, because the drill
doubles as a regression artifact (benchmarks/results/).
"""

import pytest

from repro.faults.livechaos import REDUCED_SWEEP, run_live_chaos
from repro.faults.report import LiveChaosReport


@pytest.mark.live_chaos
def test_reduced_live_sweep_is_survivable(tmp_path):
    """One point per partition — part-append (upload), durable-put
    commit (journal), first streamed piece (read) — through the whole
    kill → restart → resume → verify cycle."""
    report = run_live_chaos(points=REDUCED_SWEEP, seed=0,
                            base_dir=str(tmp_path))
    assert report.points == {point: "survived" for point in REDUCED_SWEEP}
    assert report.wrong_bytes == 0
    assert report.lost_acked_bytes == 0
    assert report.uploads_interrupted == 2   # the two non-read points
    assert report.uploads_resumed == 2
    assert report.reads_interrupted == 1     # store.stream.first
    assert report.survivable


def test_reduced_sweep_points_cover_each_partition():
    from repro.faults.killpoints import (
        KILL_POINTS,
        PUT_KILL_POINTS,
        READ_KILL_POINTS,
        UPLOAD_KILL_POINTS,
    )

    assert set(REDUCED_SWEEP) <= set(KILL_POINTS)
    assert set(REDUCED_SWEEP) & set(UPLOAD_KILL_POINTS)
    assert set(REDUCED_SWEEP) & set(PUT_KILL_POINTS)
    assert set(REDUCED_SWEEP) & set(READ_KILL_POINTS)


def _report(**overrides):
    fields = dict(seed=3, file_bytes=48_000, upload_bytes=120_000,
                  part_size=24_000, downtime_bound=60.0)
    fields.update(overrides)
    report = LiveChaosReport(**fields)
    report.points = dict(overrides.get("points",
                                       {p: "survived" for p in REDUCED_SWEEP}))
    return report


def test_report_render_is_byte_reproducible():
    """Two reports built from the same inputs render identically: no
    wall-clock, ports, or paths may leak into the artifact (timings are
    folded into the ``*_bounded`` booleans before rendering)."""
    one = _report(uploads_interrupted=2, uploads_resumed=2,
                  reads_interrupted=1)
    two = _report(uploads_interrupted=2, uploads_resumed=2,
                  reads_interrupted=1)
    assert one.render() == two.render()
    assert one.to_json() == two.to_json()
    rendered = one.render()
    assert "survivable: True" in rendered
    for banned in ("/tmp", "127.0.0.1", "seconds elapsed"):
        assert banned not in rendered


def test_report_survivable_demands_every_clause():
    healthy = _report(uploads_interrupted=2, uploads_resumed=2)
    assert healthy.survivable
    assert not _report(points={"upload.part.post": "not_killed"}).survivable
    assert not _report(wrong_bytes=1, uploads_resumed=0).survivable
    assert not _report(lost_acked_bytes=7, uploads_resumed=0).survivable
    assert not _report(uploads_interrupted=2, uploads_resumed=1).survivable
    assert not _report(uploads_interrupted=1, uploads_resumed=1,
                       downtime_bounded=False).survivable
    assert not _report(uploads_interrupted=1, uploads_resumed=1,
                       retries_bounded=False).survivable
    empty = LiveChaosReport(seed=0, file_bytes=1, upload_bytes=1,
                            part_size=1, downtime_bound=1.0)
    assert not empty.survivable  # an empty sweep proves nothing


def test_report_to_dict_round_trips_the_verdict():
    report = _report(uploads_interrupted=2, uploads_resumed=2,
                     reads_interrupted=1)
    payload = report.to_dict()
    assert payload["survivable"] is True
    assert payload["kill_points"] == report.points
    assert payload["seed"] == 3
    assert payload["outcome"]["lost_acked_bytes"] == 0
