"""`lepton chaos --backend`: the byte-reproducible durability report."""

import json

import pytest

from repro.cli import main
from repro.faults.chaos import run_backend_chaos
from repro.faults.killpoints import PUT_KILL_POINTS
from repro.faults.plan import FaultPlan

pytestmark = [pytest.mark.chaos, pytest.mark.durability]

ARGS = ["chaos", "--backend", "--seed", "3", "--reads", "40"]


def _run(capsys, argv):
    code = main(argv)
    return code, capsys.readouterr().out


class TestBackendChaosCommand:
    def test_same_seed_byte_identical_report(self, capsys):
        code_a, out_a = _run(capsys, ARGS)
        code_b, out_b = _run(capsys, ARGS)
        assert code_a == code_b == 0
        assert out_a == out_b
        assert "crash-recovery kill sweep" in out_a
        assert "replicas converged:  True" in out_a

    def test_json_mode_parses_and_verdicts(self, capsys):
        code_a, out_a = _run(capsys, ARGS + ["--json"])
        code_b, out_b = _run(capsys, ARGS + ["--json"])
        assert code_a == 0
        assert out_a == out_b
        report = json.loads(out_a)
        assert report["durable"] is True
        assert report["scrub_drill"]["wrong_bytes"] == 0
        assert report["scrub_drill"]["scrub_unrepairable"] == 0
        assert report["scrub_drill"]["second_pass_clean"] is True
        # The sweep covers the whole durable-put partition: adding a
        # put-protocol step without sweeping it fails here.  (The
        # upload-session and read partitions are swept by
        # tests/storage/test_upload_recovery.py and the live harness.)
        assert set(report["kill_points"]) == set(PUT_KILL_POINTS)
        assert all(v in ("rolled_back", "redone")
                   for v in report["kill_points"].values())


def test_run_backend_chaos_drill_is_durable_and_exercises_both_paths():
    plan = FaultPlan.generate(seed=3, duration=60.0)
    report = run_backend_chaos(plan, seed=3, reads=40, replicas=3)
    assert report.durable
    assert report.kill_points_ok
    assert report.at_rest_corruptions > 0
    # Round one healed by the scrubber, round two by in-band read repair.
    assert report.scrub_repaired > 0
    assert report.read_repairs > 0
    assert report.reads_served == report.reads_attempted == 40
    assert report.wrong_bytes == 0
    assert report.replicas_converged


def test_durability_report_verdict_gates():
    from repro.faults.report import DurabilityReport

    good = DurabilityReport(
        seed=0, replicas=3, plan_summary={},
        kill_points={p: "rolled_back" for p in PUT_KILL_POINTS},
        second_pass_clean=True, replicas_converged=True)
    assert good.durable
    for breakage in (
        {"kill_points": {"journal.intent.post": "FAILED: lost a.jpg"}},
        {"kill_points": {}},
        {"wrong_bytes": 1},
        {"scrub_unrepairable": 1},
        {"second_pass_clean": False},
        {"replicas_converged": False},
    ):
        bad = DurabilityReport(
            seed=0, replicas=3, plan_summary={},
            kill_points={p: "redone" for p in PUT_KILL_POINTS},
            second_pass_clean=True, replicas_converged=True)
        for field_name, value in breakage.items():
            setattr(bad, field_name, value)
        assert not bad.durable, breakage
