"""FleetSim under fault plans: determinism, recovery policies, hedging."""

import pytest

from repro.faults.chaos import run_chaos, run_fleet_chaos
from repro.faults.plan import FaultPlan
from repro.storage.fleet import FleetConfig, FleetSim
from repro.storage.outsourcing import Strategy
from repro.storage.retry import RetryPolicy

#: Small but eventful: heavy slowdowns plus crashes in a 6-minute window.
PLAN = FaultPlan.generate(seed=11, duration=0.1 * 3600.0, crashes=2,
                          slowdowns=2, slow_factor=8.0, slow_duration=120.0,
                          network_windows=1, network_duration=60.0)


def _registry_totals(registry):
    """Every counter family, flattened to sorted (name, labels, value)."""
    out = []
    for name in sorted(registry.names()):
        for labels, metric in registry.series(name):
            value = getattr(metric, "value", None)
            if value is not None:
                out.append((name, tuple(sorted(labels.items())), value))
    return out


class TestDeterminism:
    def test_same_seed_same_counters(self):
        runs = [
            run_fleet_chaos(PLAN, seed=6, hours=0.1, policies=True)[0]
            for _ in range(2)
        ]
        assert (_registry_totals(runs[0].registry)
                == _registry_totals(runs[1].registry))

    def test_same_seed_byte_identical_report(self):
        reports = [
            run_chaos(plan=PLAN, seed=6, hours=0.1, reads=30, policies=True)
            for _ in range(2)
        ]
        assert reports[0].render() == reports[1].render()
        assert reports[0].to_json() == reports[1].to_json()

    def test_default_config_unchanged_by_fault_machinery(self):
        """No plan, no policies: the sim must make exactly the draws the
        policy-free original made (Figures 9/10 are regression-pinned)."""
        metrics = FleetSim(FleetConfig(duration_hours=0.05, seed=9)).run()
        again = FleetSim(FleetConfig(duration_hours=0.05, seed=9)).run()
        assert len(metrics.jobs) == len(again.jobs)
        assert [j.latency for j in metrics.jobs] == [j.latency for j in again.jobs]
        assert metrics.abandoned() == 0
        assert metrics.failures_by_reason() == {}
        assert metrics.availability() == pytest.approx(1.0, abs=1e-3)


class TestRecoveryPolicies:
    def test_policies_strictly_improve_availability(self):
        with_policies, _ = run_fleet_chaos(PLAN, seed=6, hours=0.1,
                                           policies=True)
        without, _ = run_fleet_chaos(PLAN, seed=6, hours=0.1, policies=False)
        assert with_policies.availability() > without.availability()
        assert with_policies.abandoned() < len(without.jobs)

    def test_faults_actually_fired(self):
        metrics, _ = run_fleet_chaos(PLAN, seed=6, hours=0.1, policies=False)
        kinds = {
            labels["kind"]
            for labels, _c in metrics.registry.series("faults.injected")
        }
        assert "crash" in kinds
        assert "slow" in kinds
        failures = metrics.failures_by_reason()
        assert sum(failures.values()) > 0

    def test_hedging_wins_some(self):
        metrics, _ = run_fleet_chaos(PLAN, seed=6, hours=0.1, policies=True)
        launched = metrics._counter_total("hedge.launched")
        won = metrics._counter_total("hedge.won")
        assert launched > 0
        assert 0 < won <= launched

    def test_retry_counter_matches_effort(self):
        metrics, _ = run_fleet_chaos(PLAN, seed=6, hours=0.1, policies=True)
        assert metrics._counter_total("retry.attempts") > 0

    def test_breakers_trip_under_crashes(self):
        _metrics, breakers = run_fleet_chaos(PLAN, seed=6, hours=0.1,
                                             policies=True)
        assert breakers is not None
        assert breakers.trip_count() > 0


class TestConversionSemantics:
    def test_retry_limit_bounds_attempts(self):
        """With retry but constant refusal (every server down) the
        conversion is abandoned after max_attempts tries."""
        config = FleetConfig(n_blockservers=2, n_dedicated=0,
                             duration_hours=0.01, seed=3,
                             retry=RetryPolicy(max_attempts=3, jitter=0.0),
                             strategy=Strategy.CONTROL)
        sim = FleetSim(config)
        for server in sim.blockservers:
            server.crash()
        metrics = sim.run()
        submitted = metrics._counter_total("fleet.jobs.submitted")
        retries = metrics._counter_total("retry.attempts")
        abandoned = metrics.abandoned()
        failures = metrics.failures_by_reason()
        assert submitted > 0
        assert metrics._counter_total("fleet.jobs.completed") == 0
        # A few conversions may still be mid-backoff at the end of the
        # window (one granted retry each that never ran); every finished
        # one was abandoned after exactly 3 refused tries.
        assert 0 < abandoned <= submitted
        in_flight = submitted - abandoned
        assert failures["refused"] == submitted + retries - in_flight
        assert failures["refused"] >= 3 * abandoned
        assert retries <= 2 * submitted
