"""Degraded reads: bounded retry, original-JPEG fallback, zero wrong bytes."""

import numpy as np
import pytest

from repro.corpus.builder import corpus_jpeg
from repro.faults.injector import ReadFaultInjector, corrupt_at_rest
from repro.faults.plan import StorageFaultConfig
from repro.obs import MetricsRegistry, get_registry
from repro.storage.blockstore import BlockStore, IntegrityError
from repro.storage.retry import RetryPolicy


def _store(**kwargs) -> BlockStore:
    store = BlockStore(**kwargs)
    for seed in (21, 22):
        store.put_file(f"photo-{seed}.jpg",
                       corpus_jpeg(seed=seed, height=32, width=32))
    return store


class TestFallback:
    def test_at_rest_truncation_served_from_original(self):
        store = _store(keep_originals=True,
                       read_retry=RetryPolicy(max_attempts=2))
        name = "photo-21.jpg"
        original = corpus_jpeg(seed=21, height=32, width=32)
        key = store.files[name].chunk_keys[0]
        entry = store.entries[key]
        entry.chunk.payload = entry.chunk.payload[:7]
        assert store.get_file(name) == original
        assert store.degraded_fallbacks == 1
        assert get_registry().counter("degraded_read.fallbacks").value == 1

    def test_stream_file_uses_the_fallback_too(self):
        store = _store(keep_originals=True)
        name = "photo-22.jpg"
        original = corpus_jpeg(seed=22, height=32, width=32)
        key = store.files[name].chunk_keys[0]
        store.entries[key].chunk.payload = b"\x00garbage"
        assert b"".join(store.stream_file(name)) == original
        assert store.degraded_fallbacks == 1

    def test_no_fallback_configured_still_raises(self):
        store = _store(read_retry=RetryPolicy(max_attempts=2))
        key = store.files["photo-21.jpg"].chunk_keys[0]
        store.entries[key].chunk.payload = b"rotten"
        with pytest.raises(IntegrityError):
            store.get_file("photo-21.jpg")

    def test_healthy_reads_never_touch_the_fallback(self):
        store = _store(keep_originals=True,
                       read_retry=RetryPolicy(max_attempts=2))
        for seed in (21, 22):
            assert (store.get_file(f"photo-{seed}.jpg")
                    == corpus_jpeg(seed=seed, height=32, width=32))
        assert store.degraded_fallbacks == 0


class TestTransientFaults:
    def test_retry_heals_transient_corruption(self):
        """A fault that corrupts every odd read attempt: the bounded
        re-read always lands on a clean copy."""
        flips = {"n": 0}

        def flaky(key, payload, attempt):
            flips["n"] += 1
            return payload[:-1] if attempt == 1 else payload

        store = _store(read_retry=RetryPolicy(max_attempts=2),
                       read_fault=flaky)
        assert (store.get_file("photo-21.jpg")
                == corpus_jpeg(seed=21, height=32, width=32))
        assert flips["n"] == 2  # corrupted once, clean on the re-read
        assert store.degraded_fallbacks == 0

    def test_retry_budget_exhausted_without_fallback(self):
        store = _store(read_retry=RetryPolicy(max_attempts=2),
                       read_fault=lambda k, p, a: p[:-1])
        with pytest.raises(IntegrityError):
            store.get_file("photo-21.jpg")


@pytest.mark.chaos
class TestZeroWrongBytes:
    def test_thousand_faulted_reads_serve_only_right_bytes(self):
        """The §5.7 invariant under sustained storage chaos: across ≥1,000
        reads with transient corruption, persistent at-rest rot, and the
        degraded-read machinery active, not one wrong byte is served."""
        registry = MetricsRegistry()
        config = StorageFaultConfig(read_corrupt_probability=0.4,
                                    at_rest_corruptions=1)
        store = _store(keep_originals=True,
                       read_retry=RetryPolicy(max_attempts=3))
        rng = np.random.default_rng(17)
        assert corrupt_at_rest(store, config, rng, registry=registry) == 1
        injector = ReadFaultInjector(config, seed=18, registry=registry)
        store.read_fault = injector
        originals = {
            name: corpus_jpeg(seed=seed, height=32, width=32)
            for seed, name in ((21, "photo-21.jpg"), (22, "photo-22.jpg"))
        }
        names = sorted(originals)
        reads = served = wrong = failed = 0
        for _ in range(1000):
            name = names[int(rng.integers(len(names)))]
            reads += 1
            try:
                data = store.get_file(name)
            except IntegrityError:
                failed += 1
                continue
            served += 1
            if data != originals[name]:
                wrong += 1
        assert reads == 1000
        assert wrong == 0
        assert injector.injected > 100      # chaos actually happened
        assert store.degraded_fallbacks > 0  # the rotten chunk was hit
        assert failed == 0                   # and always recovered
        assert served == reads
