"""BlockServer crash/restart/slow/cancel semantics under fault injection."""

from repro.faults.injector import FleetFaultInjector
from repro.faults.plan import CrashFault, FaultPlan, SlowFault
from repro.obs import MetricsRegistry
from repro.storage.blockserver import BlockServer, Job
from repro.storage.simclock import SimClock

import pytest


def _server(clock, registry=None, **kwargs):
    if registry is None:
        registry = MetricsRegistry()  # note: an empty registry is falsy
    return BlockServer(clock, 0, registry=registry, **kwargs)


class TestCrash:
    def test_crash_loses_inflight_jobs(self):
        clock = SimClock()
        server = _server(clock)
        failures = []
        job = Job("lepton_encode", 10.0, 2, 0.0,
                  on_fail=lambda j, reason: failures.append((j.job_id, reason)))
        server.submit(job)
        clock.after(1.0, server.crash)
        clock.run_all()
        assert failures == [(job.job_id, "crash")]
        assert job.failed and job.fail_reason == "crash"
        assert server.active_jobs == 0
        assert not server.up
        assert server.crashes == 1

    def test_down_server_refuses_submissions(self):
        clock = SimClock()
        registry = MetricsRegistry()
        server = _server(clock, registry=registry)
        server.crash()
        failures = []
        job = Job("lepton_decode", 1.0, 2, 0.0,
                  on_fail=lambda j, reason: failures.append(reason))
        server.submit(job)
        assert failures == ["refused"]
        assert registry.counter("blockserver.refused", server=0).value == 1
        assert server.active_jobs == 0

    def test_restart_brings_it_back(self):
        clock = SimClock()
        server = _server(clock)
        server.crash()
        server.restart()
        assert server.up
        done = []
        server.submit(Job("lepton_encode", 2.0, 2, 0.0,
                          on_complete=lambda j: done.append(j.job_id)))
        clock.run_all()
        assert len(done) == 1

    def test_fail_callback_fires_once(self):
        calls = []
        job = Job("other", 1.0, 1, 0.0,
                  on_fail=lambda j, reason: calls.append(reason))
        job.fail("crash")
        job.fail("timeout")  # already failed: ignored
        assert calls == ["crash"]
        assert job.fail_reason == "crash"


class TestSlow:
    def test_slow_factor_stretches_latency(self):
        def completion_time(factor):
            clock = SimClock()
            server = _server(clock)
            if factor != 1.0:
                server.set_slow(factor)
            finish = []
            server.submit(Job("lepton_encode", 8.0, 2, 0.0,
                              on_complete=lambda j: finish.append(j.finish_time)))
            clock.run_all()
            return finish[0]

        assert completion_time(4.0) == pytest.approx(4.0 * completion_time(1.0))

    def test_slow_accounts_progress_at_old_speed(self):
        clock = SimClock()
        server = _server(clock)
        finish = []
        server.submit(Job("lepton_encode", 4.0, 2, 0.0,
                          on_complete=lambda j: finish.append(j.finish_time)))
        # Half the work done at full speed, the rest at quarter speed:
        # 1s + 1s*4 = 5s total.
        clock.after(1.0, lambda: server.set_slow(4.0))
        clock.run_all()
        assert finish[0] == pytest.approx(5.0)

    def test_invalid_factor_rejected(self):
        server = _server(SimClock())
        with pytest.raises(ValueError):
            server.set_slow(0.0)


class TestCancel:
    def test_cancel_removes_without_callbacks(self):
        clock = SimClock()
        server = _server(clock)
        outcomes = []
        job = Job("lepton_encode", 5.0, 2, 0.0,
                  on_complete=lambda j: outcomes.append("done"),
                  on_fail=lambda j, r: outcomes.append(r))
        server.submit(job)
        assert server.cancel(job.job_id)
        clock.run_all()
        assert outcomes == []
        assert server.active_jobs == 0

    def test_cancel_missing_job_is_false(self):
        assert not _server(SimClock()).cancel(12345)


class TestInjectorScheduling:
    class _Sim:
        def __init__(self):
            self.clock = SimClock()
            self.registry = MetricsRegistry()
            self.blockservers = [
                BlockServer(self.clock, i, registry=self.registry)
                for i in range(2)
            ]

    def test_crash_and_restart_fire_on_schedule(self):
        sim = self._Sim()
        plan = FaultPlan(crashes=[CrashFault(time=5.0, server=0,
                                             restart_after=10.0)])
        FleetFaultInjector(plan, sim).arm()
        sim.clock.run_until(6.0)
        assert not sim.blockservers[0].up
        sim.clock.run_until(16.0)
        assert sim.blockservers[0].up
        counts = {
            labels["kind"]: c.value
            for labels, c in sim.registry.series("faults.injected")
        }
        assert counts == {"crash": 1, "restart": 1}

    def test_slow_window_applies_and_restores(self):
        sim = self._Sim()
        plan = FaultPlan(slowdowns=[SlowFault(start=2.0, duration=3.0,
                                              server=1, factor=6.0)])
        FleetFaultInjector(plan, sim).arm()
        sim.clock.run_until(3.0)
        assert sim.blockservers[1].slow_factor == 6.0
        sim.clock.run_until(10.0)
        assert sim.blockservers[1].slow_factor == 1.0
