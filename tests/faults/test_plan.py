"""FaultPlan generation, serialisation, and determinism."""

from repro.faults.plan import (
    CrashFault,
    FaultPlan,
    NetworkFault,
    SlowFault,
    StorageFaultConfig,
)


class TestGenerate:
    def test_same_seed_same_plan(self):
        assert FaultPlan.generate(seed=4) == FaultPlan.generate(seed=4)

    def test_different_seed_different_plan(self):
        assert FaultPlan.generate(seed=4) != FaultPlan.generate(seed=5)

    def test_counts_match_request(self):
        plan = FaultPlan.generate(seed=1, crashes=3, slowdowns=2,
                                  network_windows=1)
        assert len(plan.crashes) == 3
        assert len(plan.slowdowns) == 2
        assert len(plan.network) == 1
        assert plan.storage is not None  # default profile attached

    def test_events_land_inside_the_window(self):
        plan = FaultPlan.generate(seed=9, duration=1000.0, crashes=5,
                                  slowdowns=5, network_windows=3)
        times = ([c.time for c in plan.crashes]
                 + [s.start for s in plan.slowdowns]
                 + [n.start for n in plan.network])
        assert all(0.0 <= t <= 800.0 for t in times)  # first 80%

    def test_events_sorted_by_time(self):
        plan = FaultPlan.generate(seed=2, crashes=6)
        times = [c.time for c in plan.crashes]
        assert times == sorted(times)


class TestSerialisation:
    def test_json_roundtrip(self):
        plan = FaultPlan.generate(seed=7, crashes=2, slowdowns=1,
                                  network_windows=1)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_roundtrip_without_storage(self):
        plan = FaultPlan(crashes=[CrashFault(time=5.0, server=1)])
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert again.storage is None

    def test_json_is_deterministic(self):
        a = FaultPlan.generate(seed=3)
        b = FaultPlan.generate(seed=3)
        assert a.to_json() == b.to_json()

    def test_storage_kinds_survive(self):
        plan = FaultPlan(storage=StorageFaultConfig(kinds=("bitflip",)))
        assert FaultPlan.from_json(plan.to_json()).storage.kinds == ("bitflip",)


class TestWindows:
    def test_network_fault_at(self):
        window = NetworkFault(start=10.0, duration=5.0)
        plan = FaultPlan(network=[window])
        assert plan.network_fault_at(12.0) is window
        assert plan.network_fault_at(9.9) is None
        assert plan.network_fault_at(15.0) is None  # half-open interval

    def test_summary(self):
        plan = FaultPlan(
            crashes=[CrashFault(time=1.0, server=0)],
            slowdowns=[SlowFault(start=1.0, duration=2.0, server=0)],
        )
        assert plan.summary() == {
            "crashes": 1, "slowdowns": 1, "network_windows": 0,
            "storage": False,
        }
