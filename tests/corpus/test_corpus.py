"""Synthetic image generation and corpus construction."""

import numpy as np
import pytest

from repro.corpus.builder import CorpusFile, build_corpus, corpus_jpeg, jpeg_sweep
from repro.corpus.corruptions import (
    append_garbage,
    concatenated_jpegs,
    make_header_only,
    not_an_image,
    truncate,
    zero_run_tail,
)
from repro.corpus.images import flat_image, noise_image, synthetic_photo


class TestSyntheticPhoto:
    def test_shape_and_dtype(self):
        img = synthetic_photo(32, 48, seed=1)
        assert img.shape == (32, 48, 3)
        assert img.dtype == np.uint8

    def test_grayscale_shape(self):
        assert synthetic_photo(16, 16, seed=1, grayscale=True).shape == (16, 16)

    def test_deterministic_per_seed(self):
        a = synthetic_photo(24, 24, seed=7)
        b = synthetic_photo(24, 24, seed=7)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = synthetic_photo(24, 24, seed=1)
        b = synthetic_photo(24, 24, seed=2)
        assert not np.array_equal(a, b)

    def test_has_photo_like_smoothness(self):
        """Neighbouring pixels correlate — the statistic Lepton exploits."""
        img = synthetic_photo(64, 64, seed=3, noise=1.0).astype(np.float64)
        horizontal_diff = np.abs(np.diff(img[..., 0], axis=1)).mean()
        assert horizontal_diff < 12.0

    def test_channels_correlated(self):
        img = synthetic_photo(48, 48, seed=4).astype(np.float64)
        r, g = img[..., 0].ravel(), img[..., 1].ravel()
        assert np.corrcoef(r, g)[0, 1] > 0.8

    def test_flat_and_noise_helpers(self):
        assert np.all(flat_image(8, 8, value=77) == 77)
        noise = noise_image(16, 16, seed=1)
        assert noise.std() > 40


class TestCorpusBuilder:
    def test_corpus_jpeg_cached_and_deterministic(self):
        assert corpus_jpeg(seed=5) == corpus_jpeg(seed=5)

    def test_sweep_varies_parameters(self):
        files = jpeg_sweep(8, seed=0)
        sizes = {f.size for f in files}
        assert len(sizes) > 3
        assert all(f.category == "jpeg" for f in files)

    def test_build_corpus_includes_rejects(self):
        corpus = build_corpus(n_jpegs=6, seed=1)
        categories = {f.category for f in corpus}
        assert "jpeg" in categories
        assert "progressive" in categories
        assert "not_image" in categories
        assert "cmyk" in categories

    def test_build_corpus_without_rejects(self):
        corpus = build_corpus(n_jpegs=4, seed=1, include_rejects=False)
        assert all(f.category == "jpeg" for f in corpus)

    def test_corpus_file_size(self):
        f = CorpusFile("x", b"1234", "jpeg")
        assert f.size == 4


class TestCorruptions:
    def test_truncate_shortens(self, small_jpeg):
        assert len(truncate(small_jpeg, 0.5)) < len(small_jpeg)

    def test_zero_run_preserves_length(self, small_jpeg):
        out = zero_run_tail(small_jpeg, 64)
        assert len(out) == len(small_jpeg)
        assert out[-64:] == bytes(64)

    def test_append_garbage_deterministic(self, small_jpeg):
        assert append_garbage(small_jpeg, seed=1) == append_garbage(small_jpeg, seed=1)

    def test_concatenated_jpegs_roundtrip(self):
        """§A.3: thumbnail+image files round-trip; only the first JPEG gets
        the coefficient model — the second rides along as trailer bytes
        (zlib-compressed, so its *scan* stays essentially uncompressed)."""
        from repro.core.format import read_container
        from repro.core.lepton import compress, decompress

        thumb = corpus_jpeg(seed=8, height=32, width=32)
        full = corpus_jpeg(seed=9, height=96, width=96)
        data = concatenated_jpegs(thumb, full)
        result = compress(data)
        assert result.ok
        assert decompress(result.payload) == data
        parsed = read_container(result.payload)
        assert parsed.trailer.endswith(full)  # second file is raw trailer
        # The arithmetic-coded part covers only the thumbnail's blocks.
        thumb_only = compress(thumb)
        assert sum(len(s.data) for s in parsed.segments) <= 1.2 * sum(
            len(s.data) for s in read_container(thumb_only.payload).segments
        )

    def test_not_an_image_soi_prefix(self):
        assert not_an_image(with_soi=True)[:2] == b"\xFF\xD8"
        assert not_an_image(with_soi=False)[:2] != b"\xFF\xD8"

    def test_header_only_ends_with_eoi(self, small_jpeg):
        data = make_header_only(small_jpeg)
        assert data.endswith(b"\xFF\xD9")
        assert len(data) < len(small_jpeg)
