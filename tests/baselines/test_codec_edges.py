"""Edge cases of the comparator codecs."""

import pytest

from repro.baselines import jpegrescan_like, mozjpeg_arith, packjpg_like, paq_like
from repro.core.errors import FormatError
from repro.corpus.builder import corpus_jpeg
from repro.corpus.images import flat_image
from repro.jpeg.writer import encode_baseline_jpeg


class TestPaqEdges:
    def test_empty_input_generic_path(self):
        payload = paq_like.compress(b"")
        assert paq_like.decompress(payload) == b""

    def test_single_byte(self):
        payload = paq_like.compress(b"\x00")
        assert paq_like.decompress(payload) == b"\x00"

    def test_unknown_magic_rejected(self):
        with pytest.raises(FormatError):
            paq_like.decompress(b"ZZ????")

    def test_flat_jpeg_compresses_hard(self):
        data = encode_baseline_jpeg(flat_image(48, 48), quality=85)
        payload = paq_like.compress(data)
        assert len(payload) < len(data)
        assert paq_like.decompress(payload) == data

    def test_mixer_weights_bounded_over_long_runs(self):
        mixer = paq_like.Mixer(2)
        for i in range(5000):
            p = mixer.mix([0.2, 0.8])
            mixer.update(i % 2, p)
        assert all(abs(w) < 50 for w in mixer.weights)

    def test_count_model_renormalises(self):
        model = paq_like.CountModel()
        for _ in range(5000):
            model.update("k", 1)
        zeros, ones = model.table["k"]
        assert zeros + ones <= 1024


class TestMozjpegEdges:
    def test_flat_image_all_eob(self):
        data = encode_baseline_jpeg(flat_image(32, 32), quality=85)
        payload = mozjpeg_arith.compress(data)
        assert mozjpeg_arith.decompress(payload) == data

    def test_unknown_magic_rejected(self):
        with pytest.raises(FormatError):
            mozjpeg_arith.decompress(b"XY123456789")

    def test_high_quality_dense_blocks(self):
        data = corpus_jpeg(seed=600, height=48, width=48, quality=97)
        payload = mozjpeg_arith.compress(data)
        assert mozjpeg_arith.decompress(payload) == data


class TestPackJpgEdges:
    def test_unknown_magic_rejected(self):
        with pytest.raises(FormatError):
            packjpg_like.decompress(b"QQ\x00\x00\x00\x00\x00\x00\x00\x00")

    def test_unknown_mode_byte_rejected(self):
        data = corpus_jpeg(seed=601, height=32, width=32)
        payload = bytearray(packjpg_like.compress(data))
        # The mode byte lives at the start of the zlib meta; corrupt the
        # zlib stream instead and expect a clean failure.
        payload[12] ^= 0xFF
        with pytest.raises(Exception):
            packjpg_like.decompress(bytes(payload))

    def test_planar_mode_on_grayscale(self):
        data = corpus_jpeg(seed=602, height=40, width=40, grayscale=True)
        payload = packjpg_like.compress(data, mode="planar")
        assert packjpg_like.decompress(payload) == data


class TestJpegRescanEdges:
    def test_explicit_modes_roundtrip_flat_image(self):
        data = encode_baseline_jpeg(flat_image(40, 40), quality=85)
        for mode in ("optimize", "progressive", "best"):
            payload = jpegrescan_like.compress(data, mode=mode)
            assert jpegrescan_like.decompress(payload) == data, mode

    def test_unknown_mode_rejected(self):
        data = corpus_jpeg(seed=603, height=32, width=32)
        with pytest.raises(ValueError):
            jpegrescan_like.compress(data, mode="zopfli")

    def test_best_never_larger_than_optimize(self):
        data = corpus_jpeg(seed=604, height=64, width=64)
        best = jpegrescan_like.compress(data, mode="best")
        optimize = jpegrescan_like.compress(data, mode="optimize")
        assert len(best) <= len(optimize)

    def test_unknown_flavour_byte_rejected(self):
        data = corpus_jpeg(seed=605, height=32, width=32)
        payload = bytearray(jpegrescan_like.compress(data))
        payload[2] = ord("Q")
        with pytest.raises(FormatError):
            jpegrescan_like.decompress(bytes(payload))
