"""Comparator codecs: round trips, rejection behaviour, ratio ordering."""

import pytest

from repro.baselines import jpegrescan_like, mozjpeg_arith, packjpg_like, paq_like
from repro.baselines.registry import all_codecs, get_codec
from repro.corpus import corruptions
from repro.corpus.builder import corpus_jpeg


@pytest.fixture(scope="module")
def photo():
    return corpus_jpeg(seed=60, height=96, width=96, quality=85)


@pytest.fixture(scope="module")
def gray_photo():
    return corpus_jpeg(seed=61, height=64, width=64, grayscale=True)


class TestRegistry:
    def test_eleven_codecs_like_figure_2(self):
        assert len(all_codecs()) == 11

    def test_lookup_by_name(self):
        assert get_codec("lepton").name == "lepton"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_codec("middle-out")

    def test_jpeg_aware_flags(self):
        aware = {c.name for c in all_codecs() if c.jpeg_aware}
        assert aware == {"lepton", "lepton-1way", "packjpg", "paq8px",
                         "jpegrescan", "mozjpeg"}

    def test_substitutions_documented(self):
        subs = {c.name for c in all_codecs() if c.substitution_note}
        assert {"brotli", "lzham", "zstandard"} <= subs


@pytest.mark.parametrize("name", [c.name for c in all_codecs()])
def test_every_codec_roundtrips_jpeg(name, photo):
    codec = get_codec(name)
    assert codec.decompress(codec.compress(photo)) == photo


@pytest.mark.parametrize("name", ["lepton", "packjpg", "mozjpeg", "jpegrescan"])
def test_jpeg_aware_codecs_roundtrip_grayscale(name, gray_photo):
    codec = get_codec(name)
    assert codec.decompress(codec.compress(gray_photo)) == gray_photo


def test_rst_jpeg_roundtrips_through_jpeg_aware(photo):
    data = corpus_jpeg(seed=62, height=64, width=80, restart_interval=3)
    for name in ("lepton", "packjpg", "mozjpeg", "jpegrescan", "paq8px"):
        codec = get_codec(name)
        assert codec.decompress(codec.compress(data)) == data, name


class TestRatioOrdering:
    """The Figure 1/2 shape: model size buys compression."""

    @pytest.fixture(scope="class")
    def sizes(self, photo):
        return {
            c.name: len(c.compress(photo))
            for c in all_codecs()
        }

    def test_lepton_beats_small_bin_arithmetic(self, sizes):
        assert sizes["lepton"] < sizes["mozjpeg"]

    def test_lepton_beats_huffman_reoptimisation(self, sizes):
        assert sizes["lepton"] < sizes["jpegrescan"]

    def test_packjpg_matches_lepton_class(self, sizes):
        assert sizes["packjpg"] <= sizes["mozjpeg"]

    def test_jpeg_aware_beats_generic(self, sizes):
        best_generic = min(sizes[n] for n in ("deflate", "lzma", "zstandard"))
        assert sizes["lepton"] < best_generic

    def test_generic_codecs_barely_compress_the_scan(self, photo):
        """§2's point precisely: Deflate achieves ~nothing on the entropy-
        coded scan itself — whatever it saves comes from the header."""
        import zlib

        from repro.jpeg.parser import parse_jpeg

        scan = parse_jpeg(photo).scan_data
        assert len(zlib.compress(scan, 9)) > 0.97 * len(scan)


class TestPackJpgModes:
    def test_latest_mode_default(self, photo):
        payload = packjpg_like.compress(photo)
        assert packjpg_like.decompress(payload) == photo

    @pytest.mark.parametrize("mode", ["latest", "2007", "planar"])
    def test_all_modes_roundtrip(self, photo, mode):
        payload = packjpg_like.compress(photo, mode=mode)
        assert packjpg_like.decompress(payload) == photo

    def test_latest_beats_2007(self, photo):
        """Footnote 3: the current PackJPG outperforms the 2007 paper."""
        latest = len(packjpg_like.compress(photo, mode="latest"))
        y2007 = len(packjpg_like.compress(photo, mode="2007"))
        assert latest < y2007

    def test_invalid_mode_rejected(self, photo):
        with pytest.raises(ValueError):
            packjpg_like.compress(photo, mode="quantum")

    def test_rejects_progressive(self, photo):
        from repro.jpeg.errors import UnsupportedJpegError

        with pytest.raises(UnsupportedJpegError):
            packjpg_like.compress(corruptions.make_progressive(photo))


class TestPaqLike:
    def test_generic_path_for_non_jpeg(self):
        data = b"The quick brown fox jumps over the lazy dog. " * 40
        payload = paq_like.compress(data)
        assert payload[:2] == paq_like.MAGIC_GENERIC
        assert paq_like.decompress(payload) == data

    def test_generic_path_compresses_text(self):
        data = b"abcabcabc " * 300
        assert len(paq_like.compress(data)) < len(data) * 0.6

    def test_jpeg_path_used_for_jpegs(self, photo):
        assert paq_like.compress(photo)[:2] == paq_like.MAGIC_JPEG

    def test_mixer_output_valid_probability(self):
        mixer = paq_like.Mixer(3)
        p = mixer.mix([0.1, 0.5, 0.9])
        assert 0.0 < p < 1.0
        mixer.update(1, p)
        p2 = mixer.mix([0.1, 0.5, 0.9])
        assert p2 > p  # weights moved toward the observed bit

    def test_count_model_adapts(self):
        model = paq_like.CountModel()
        for _ in range(20):
            model.update("ctx", 1)
        assert model.predict("ctx") > 0.9


class TestJpegRescanLike:
    def test_optimised_tables_are_jpeg_legal(self, photo):
        from repro.jpeg.huffman import build_optimal_table
        from repro.jpeg.parser import parse_jpeg
        from repro.jpeg.scan_decode import decode_scan

        img = parse_jpeg(photo)
        decode_scan(img)
        dc_freq, ac_freq = jpegrescan_like._gather_symbol_stats(img)
        for freq in list(dc_freq.values()) + list(ac_freq.values()):
            assert build_optimal_table(freq).max_length <= 16

    def test_saves_bytes_vs_standard_tables(self, photo):
        assert len(jpegrescan_like.compress(photo)) < len(photo)

    def test_not_a_payload_rejected(self):
        from repro.core.errors import FormatError

        with pytest.raises(FormatError):
            jpegrescan_like.decompress(b"XXnothing")


class TestMozjpegArith:
    def test_band_grouping_covers_all_positions(self):
        assert len(mozjpeg_arith._BAND_OF) == 64
        assert set(mozjpeg_arith._BAND_OF) == {0, 1, 2, 3, 4}

    def test_small_bin_count(self, photo):
        """The defining property: a few hundred bins, not 721k."""
        from repro.core.bool_coder import BoolEncoder
        from repro.core.coefcoder import EncodeIO
        from repro.core.model import Model
        from repro.jpeg.parser import parse_jpeg
        from repro.jpeg.scan_decode import decode_scan

        img = parse_jpeg(photo)
        decode_scan(img)
        model = Model()
        mozjpeg_arith._code_image(EncodeIO(model, BoolEncoder()),
                                  img.frame, img.coefficients)
        assert model.bin_count < 2000

    def test_lepton_uses_far_more_bins(self, photo):
        """Lepton's context space dwarfs the spec-style coder's on the same
        input (721k vs ~300 in the paper; both lazily counted here)."""
        from repro.core.bool_coder import BoolEncoder
        from repro.core.coefcoder import EncodeIO
        from repro.core.lepton import LeptonConfig, compress
        from repro.core.model import Model
        from repro.jpeg.parser import parse_jpeg
        from repro.jpeg.scan_decode import decode_scan

        img = parse_jpeg(photo)
        decode_scan(img)
        moz_model = Model()
        mozjpeg_arith._code_image(EncodeIO(moz_model, BoolEncoder()),
                                  img.frame, img.coefficients)
        result = compress(photo, LeptonConfig(threads=1))
        assert result.stats.model_bins > 3 * moz_model.bin_count
