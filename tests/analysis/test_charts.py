"""ASCII chart rendering."""

import pytest

from repro.analysis.charts import line_chart, multi_series, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_input_monotone_bars(self):
        bars = sparkline([0, 1, 2, 3, 4, 5])
        assert list(bars) == sorted(bars)

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_extremes_use_full_range(self):
        bars = sparkline([0, 100])
        assert bars[0] == "▁"
        assert bars[-1] == "█"


class TestLineChart:
    def test_dimensions(self):
        chart = line_chart([1, 2, 3, 2, 1], height=4)
        lines = chart.splitlines()
        assert len(lines) == 5  # 4 rows + axis
        assert all("┤" in line or "└" in line for line in lines)

    def test_title_prepended(self):
        chart = line_chart([1, 2], title="Figure X")
        assert chart.splitlines()[0] == "Figure X"

    def test_step_function_visible(self):
        """A Figure-11-style step must show full columns then empty ones."""
        chart = line_chart([10] * 5 + [0] * 5, height=3)
        top_row = chart.splitlines()[0]
        segment = top_row.split("┤")[1]
        assert segment[:5] == "█████"
        assert segment[5:].strip() == ""

    def test_empty_series(self):
        assert line_chart([], title="t") == "t"


class TestMultiSeries:
    def test_shared_scale(self):
        out = multi_series(["a", "b"], [[0, 1], [9, 10]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert "[0.00 .. 10.00]" in lines[-1]

    def test_label_alignment(self):
        out = multi_series(["short", "a-long-label"], [[1], [2]])
        lines = out.splitlines()
        bar_col = lines[1].index(" ", len("a-long-label"))
        assert lines[0][bar_col] == " "

    def test_empty(self):
        assert multi_series([], [], title="x") == "x"
