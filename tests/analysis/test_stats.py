"""Percentiles, summaries, and table rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import Summary, mbits_per_second, percentile, summarize
from repro.analysis.tables import format_table


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([3, 1, 2], 50) == 2.0

    def test_interpolates(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        data = list(range(100))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 99

    def test_single_value(self):
        assert percentile([7], 99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200),
           st.sampled_from([25, 50, 75, 95, 99]))
    def test_matches_numpy(self, values, q):
        assert percentile(values, q) == pytest.approx(
            float(np.percentile(np.array(values), q)), rel=1e-9, abs=1e-9
        )


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.p50 == pytest.approx(2.5)

    def test_ordering_invariant(self):
        s = summarize(list(range(1000)))
        assert s.p25 <= s.p50 <= s.p75 <= s.p95 <= s.p99

    def test_row_dict(self):
        row = summarize([5.0]).row()
        assert row["n"] == 1
        assert row["p99"] == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestThroughput:
    def test_mbits(self):
        assert mbits_per_second(1_000_000, 1.0) == pytest.approx(8.0)

    def test_zero_seconds(self):
        assert mbits_per_second(100, 0.0) == float("inf")


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bbbb", 22.125]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.500" in out
        assert "22.125" in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="Figure 99")
        assert out.splitlines()[0] == "Figure 99"

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out
