"""The examples are part of the public API surface — keep them running."""

import pytest


def _run_example(name):
    import importlib.util
    import pathlib

    path = pathlib.Path(__file__).parent.parent / "examples" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


@pytest.mark.parametrize("name", [
    "quickstart",
    "photo_storage_service",
    "streaming_chunks",
    "client_side_bandwidth",
    "disaster_recovery",
])
def test_example_runs(name, capsys):
    _run_example(name)
    out = capsys.readouterr().out
    assert out  # every example narrates what it did


def test_backfill_fleet_example(capsys):
    _run_example("backfill_fleet")
    out = capsys.readouterr().out
    assert "exit codes" in out
    assert "conversions per kWh" in out
