# Developer entry points.  Everything runs against the in-tree sources
# (PYTHONPATH=src) so no editable install is needed.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test lint lint-json lint-changed lint-bench lint-tests chaos durability serve serve-tests serve-smoke live-chaos live-chaos-full

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# The chaos suite: deterministic fault injection, degraded reads, and the
# zero-wrong-bytes invariant (run with -m chaos; see docs/deployment.md).
chaos:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m chaos

# The durability suite: crash-recovery kill sweep, backend contracts,
# replication/read-repair, and the scrub loop (docs/durability.md).
durability:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m durability

# The determinism/safety static analysis (docs/lint.md).  Runs the full
# rule set D1-D10 — syntactic rules plus the CFG/dataflow passes — and
# exits non-zero on any finding; the same gate runs inside
# storage.qualification.
lint:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.lint src/repro

lint-json:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.lint --json src/repro

# Incremental lint: only files differing from git HEAD, with the
# content-hash result cache (invalidated whenever repro.lint changes).
lint-changed:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.lint src/repro --changed --cache

# Full-vs-incremental runtime comparison (benchmarks/results/lint_runtime.txt).
lint-bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q benchmarks/bench_lint_runtime.py

# Just the lint-marked portion of the test suite (self-clean gate,
# fixture corpus, reporter schema).
lint-tests:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m lint

# The HTTP front-end (docs/serve.md).  `serve` runs it on port 8080;
# `serve-smoke` boots an in-process server on an ephemeral port,
# round-trips one fig. 1 corpus file over a real socket (full + ranged
# GET), and scrapes /metrics — the one-command "is the service alive"
# gate CI runs.
serve:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli serve --port 8080

serve-tests:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m serve

serve-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.serve.smoke

# The live kill-and-recover drill (docs/serve.md): boots real `lepton
# serve` subprocesses, SIGKILLs them at armed kill points mid-upload and
# mid-stream, and proves recovery + resume.  `live-chaos` runs the
# reduced one-point-per-partition sweep; the full 17-point sweep is
# `lepton chaos --live`.
live-chaos:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m live_chaos

live-chaos-full:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli chaos --live
