# Developer entry points.  Everything runs against the in-tree sources
# (PYTHONPATH=src) so no editable install is needed.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test lint lint-json lint-tests chaos

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# The chaos suite: deterministic fault injection, degraded reads, and the
# zero-wrong-bytes invariant (run with -m chaos; see docs/deployment.md).
chaos:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m chaos

# The determinism/safety static analysis (docs/lint.md).  Exits non-zero
# on any D1-D5 finding; the same gate runs inside storage.qualification.
lint:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.lint src/repro

lint-json:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.lint --json src/repro

# Just the lint-marked portion of the test suite (self-clean gate,
# fixture corpus, reporter schema).
lint-tests:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m lint
