# Developer entry points.  Everything runs against the in-tree sources
# (PYTHONPATH=src) so no editable install is needed.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test lint lint-json lint-tests chaos serve serve-tests serve-smoke

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# The chaos suite: deterministic fault injection, degraded reads, and the
# zero-wrong-bytes invariant (run with -m chaos; see docs/deployment.md).
chaos:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m chaos

# The determinism/safety static analysis (docs/lint.md).  Exits non-zero
# on any D1-D5 finding; the same gate runs inside storage.qualification.
lint:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.lint src/repro

lint-json:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.lint --json src/repro

# Just the lint-marked portion of the test suite (self-clean gate,
# fixture corpus, reporter schema).
lint-tests:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m lint

# The HTTP front-end (docs/serve.md).  `serve` runs it on port 8080;
# `serve-smoke` boots an in-process server on an ephemeral port,
# round-trips one fig. 1 corpus file over a real socket (full + ranged
# GET), and scrapes /metrics — the one-command "is the service alive"
# gate CI runs.
serve:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli serve --port 8080

serve-tests:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m serve

serve-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.serve.smoke
