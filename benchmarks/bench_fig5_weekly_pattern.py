"""Figure 5: weekday vs weekend coding-event rates.

Paper: "Weekday upload rates are similar to weekends, but weekday download
rates of Lepton images are higher" — the decode:encode ratio approaches 1.0
on weekends and ~1.5 on weekdays, with both series plotted relative to the
weekly minimum (y-axis 1.0–4.5).
"""

from _harness import emit
from repro.analysis.tables import format_table
from repro.storage.workload import weekly_series

DAYS = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"]


def test_fig5_weekly_pattern(benchmark):
    series = benchmark.pedantic(
        lambda: weekly_series(base_encode_per_second=5.0, seed=11),
        rounds=1, iterations=1,
    )
    enc_norm, dec_norm = series.normalised()
    ratios = series.daily_ratio()
    rows = []
    for day in range(7):
        rows.append([
            DAYS[day],
            sum(enc_norm[day * 24 : (day + 1) * 24]) / 24,
            sum(dec_norm[day * 24 : (day + 1) * 24]) / 24,
            ratios[day],
        ])
    from repro.analysis.charts import multi_series

    table = format_table(
        ["day", "encodes (vs weekly min)", "decodes (vs weekly min)",
         "decode:encode"],
        rows,
        title="Figure 5 — weekly coding events "
              "(paper: ratio ≈1.5 weekdays, →1.0 weekends)",
        float_format="{:.2f}",
    )
    chart = multi_series(
        ["encodes", "decodes"], [enc_norm, dec_norm],
        title="hourly events over the week (Mon..Sun):",
    )
    emit("fig5_weekly", table + "\n\n" + chart)
    weekday_ratio = sum(ratios[:5]) / 5
    weekend_ratio = sum(ratios[5:]) / 2
    assert weekday_ratio > weekend_ratio
    assert 1.3 < weekday_ratio < 1.7
    assert 0.85 < weekend_ratio < 1.15
    # Peak-to-trough within the week lands in the paper's 1.0–4.5 band.
    assert 2.0 < max(dec_norm) < 6.0
