"""Figure 7: decompression speed vs file size, per thread count.

Paper: decode throughput rises with file size and with threads (1/2/4/8),
reaching ~250 Mbit/s; the thread-count steps are visible as bands.  We
report the *effective* multithreaded wall clock (max over independent
segments — see ``decode_lepton_timed``; the GIL hides real threading) and
assert the per-thread scaling on the larger files.

The timings come from the streaming ``DecodeSession``'s per-segment obs
spans (``span.lepton.session.decode.step``), so this bench measures the
same row-bounded pipeline every decode entry point runs.
"""

import pytest

from _harness import emit
from repro.analysis.stats import mbits_per_second
from repro.analysis.tables import format_table
from repro.core.decoder import decode_lepton_timed
from repro.core.lepton import LeptonConfig, compress
from repro.corpus.builder import corpus_jpeg

SIZES = [96, 160, 256]
THREADS = [1, 2, 4, 8]


def _speed(px: int, threads: int):
    data = corpus_jpeg(seed=7000, height=px, width=px, quality=88)
    result = compress(data, LeptonConfig(threads=threads))
    assert result.ok
    # Min of two runs: single timings are noisy under full-suite load.
    best_effective = best_serial = None
    for _ in range(2):
        out, effective, serial = decode_lepton_timed(result.payload)
        assert out == data
        if best_effective is None or effective < best_effective:
            best_effective, best_serial = effective, serial
    return len(data), mbits_per_second(len(data), best_effective), \
        mbits_per_second(len(data), best_serial)


def test_fig7_decode_speed_by_threads(benchmark):
    def run():
        return {
            (px, t): _speed(px, t) for px in SIZES for t in THREADS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [px, t, results[(px, t)][0], results[(px, t)][1], results[(px, t)][2]]
        for px in SIZES for t in THREADS
    ]
    emit("fig7_decode_threads", format_table(
        ["image px", "threads", "file size (B)",
         "effective dec (Mbps)", "serial dec (Mbps)"],
        rows,
        title="Figure 7 — decode speed vs size per thread count "
              "(paper: bands at 1/2/4/8 threads up to ~250 Mbit/s)",
        float_format="{:.3f}",
    ))
    largest = SIZES[-1]
    speeds = [results[(largest, t)][1] for t in THREADS]
    # More threads decode faster on large files, with less-than-linear
    # scaling (per-segment imbalance + serial container work).  The upper
    # bound carries a noise margin: single-digit-ms timings jitter.
    assert speeds[1] > speeds[0] * 1.4
    assert speeds[2] > speeds[1] * 1.2
    assert speeds[3] > speeds[2] * 1.05
    assert speeds[3] < speeds[0] * 9.5
