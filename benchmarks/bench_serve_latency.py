"""``lepton serve`` latency under closed- and open-loop load.

Three experiments against a live in-process server (real sockets, real
codec, 4-KiB chunks so multi-chunk files stay fast in pure Python):

* **closed loop** — N clients, each PUT→GET in a tight loop, at several
  concurrency levels; reports request p50/p99 and GET time-to-first-byte.
* **open loop** — arrivals paced by the fig. 5 weekly shape (each hour of
  the paper's week becomes a burst whose size follows the normalised
  encode/decode rates), so the server sees the diurnal swing, not a
  constant rate.
* **saturation** — far more concurrent clients than ``max_inflight`` +
  ``queue_depth``; admission control must shed with immediate ``503``s
  and keep the p99 of *served* requests bounded (shedding is the paper's
  §5.5 answer to overload: degrade sideways, never collapse).
"""

import asyncio
import time

from _harness import SCALE, bench_corpus, emit
from repro.analysis.tables import format_table
from repro.serve.app import LeptonServer, ServeConfig
from repro.serve.client import ServeClient
from repro.storage.workload import weekly_series


def _percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


class _Stats:
    def __init__(self):
        self.latencies = []
        self.ttfbs = []
        self.statuses = {}

    def record(self, status, seconds, ttfb=None):
        self.statuses[status] = self.statuses.get(status, 0) + 1
        if status in (200, 201, 206):
            self.latencies.append(seconds)
            if ttfb is not None:
                self.ttfbs.append(ttfb)

    def row(self, label):
        served = len(self.latencies)
        shed = self.statuses.get(503, 0)
        return [
            label, served, shed,
            1e3 * _percentile(self.latencies, 0.50),
            1e3 * _percentile(self.latencies, 0.99),
            1e3 * _percentile(self.ttfbs, 0.50),
            1e3 * _percentile(self.ttfbs, 0.99),
        ]


async def _worker(server, payloads, stats, requests):
    async with ServeClient(server.config.host, server.port) as client:
        ids = []
        for i in range(requests):
            data = payloads[i % len(payloads)]
            t0 = time.monotonic()
            put = await client.put_file(data)
            stats.record(put.status, time.monotonic() - t0)
            if put.status in (200, 201):
                ids.append(put.json()["id"])
            if not ids:
                continue
            file_id = ids[i % len(ids)]
            t0 = time.monotonic()
            got = await client.get_file(file_id)
            stats.record(got.status, time.monotonic() - t0, got.ttfb)


async def _closed_loop(payloads, concurrency, requests_per_client):
    server = LeptonServer(ServeConfig(chunk_size=4096, max_inflight=8,
                                      queue_depth=16))
    await server.start()
    stats = _Stats()
    try:
        await asyncio.gather(*[
            _worker(server, payloads, stats, requests_per_client)
            for _ in range(concurrency)
        ])
    finally:
        await server.drain()
    return stats


async def _open_loop(payloads):
    """Fig. 5 replay: each hour of the week becomes one paced burst."""
    series = weekly_series(base_encode_per_second=5.0, seed=11)
    enc_norm, dec_norm = series.normalised()
    step = max(1, int(24 / max(1.0, 4 * SCALE)))   # hours sampled per day
    server = LeptonServer(ServeConfig(chunk_size=4096, max_inflight=8,
                                      queue_depth=16))
    await server.start()
    stats = _Stats()
    try:
        async with ServeClient(server.config.host, server.port) as client:
            seeded = await client.put_file(payloads[0])
            known = [seeded.json()["id"]]
            for hour in range(0, len(enc_norm), step):
                puts = max(1, round(enc_norm[hour]))
                gets = max(1, round(dec_norm[hour]))
                for i in range(puts):
                    data = payloads[(hour + i) % len(payloads)]
                    t0 = time.monotonic()
                    put = await client.put_file(data)
                    stats.record(put.status, time.monotonic() - t0)
                    if put.status in (200, 201):
                        known.append(put.json()["id"])
                for i in range(gets):
                    t0 = time.monotonic()
                    got = await client.get_file(known[(hour + i) % len(known)])
                    stats.record(got.status, time.monotonic() - t0, got.ttfb)
                await asyncio.sleep(0.001)         # the inter-hour gap
    finally:
        await server.drain()
    return stats


async def _saturated(payloads, concurrency=24):
    """Clients >> max_inflight + queue_depth: shedding, not collapse."""
    server = LeptonServer(ServeConfig(chunk_size=4096, max_inflight=2,
                                      queue_depth=2))
    await server.start()
    stats = _Stats()
    try:
        await asyncio.gather(*[
            _worker(server, payloads, stats, 4)
            for _ in range(concurrency)
        ])
        scrape = server.registry.render()
        assert "serve.admission.rejected" in scrape
    finally:
        await server.drain()
    return stats


def test_serve_latency(benchmark):
    payloads = [f.data for f in bench_corpus(n=max(3, int(3 * SCALE)))]
    levels = [1, 4, 8]

    def _run():
        rows = []
        for concurrency in levels:
            stats = asyncio.run(
                _closed_loop(payloads, concurrency,
                             requests_per_client=max(3, int(4 * SCALE))))
            rows.append(stats.row(f"closed c={concurrency}"))
        rows.append(asyncio.run(_open_loop(payloads)).row("open fig.5"))
        saturated = asyncio.run(_saturated(payloads))
        rows.append(saturated.row("saturated c=24"))
        return rows, saturated

    rows, saturated = benchmark.pedantic(_run, rounds=1, iterations=1)
    closed_rows = rows[:len(levels)]

    table = format_table(
        ["load", "served", "503s", "p50 ms", "p99 ms",
         "ttfb p50 ms", "ttfb p99 ms"],
        rows,
        title="lepton serve latency — closed loop (c clients, PUT+GET each), "
              "fig.5 open-loop replay, and saturation (max_inflight=2, "
              "queue_depth=2)",
        float_format="{:.1f}",
    )
    emit("serve_latency", table)

    # Every level actually served traffic and measured a first byte.
    for row in rows:
        assert row[1] > 0
        assert row[6] > 0
    # Unsaturated closed loops shed nothing.
    for row in closed_rows:
        assert row[2] == 0
    # Saturation sheds with 503s yet keeps the served p99 bounded: within
    # a small multiple of the gentlest closed-loop p99 (queueing is
    # bounded by queue_depth, so the tail cannot grow with client count).
    assert saturated.statuses.get(503, 0) > 0
    baseline_p99 = max(closed_rows[0][4], 1.0)
    assert rows[-1][4] < 40 * baseline_p99, (
        f"saturated p99 {rows[-1][4]:.1f}ms vs baseline {baseline_p99:.1f}ms"
    )
