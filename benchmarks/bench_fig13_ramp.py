"""Figure 13: the decode:encode ratio ramp after roll-out ("boiling the frog").

Paper (Apr 20 – Jun 29, 2016): the ratio starts near zero — old photos are
Deflate-compressed, only new uploads need Lepton decodes — and climbs past
1.0 within ~two months, with weekly modulation, eventually settling between
1.5× and 2×.
"""

from _harness import emit
from repro.analysis.tables import format_table
from repro.storage.workload import RolloutModel


def test_fig13_decode_encode_ramp(benchmark):
    model = RolloutModel()
    series = benchmark.pedantic(
        lambda: model.ratio_series(days=98, seed=21), rounds=1, iterations=1
    )
    weekly = []
    for week in range(14):
        chunk = [r for d, r in series[week * 7 : (week + 1) * 7]]
        weekly.append([week, sum(chunk) / len(chunk)])
    from repro.analysis.charts import line_chart

    table = format_table(
        ["week since rollout", "decode:encode ratio"],
        weekly,
        title="Figure 13 — ratio ramp (paper: ~0 → >1.5 over ~10 weeks)",
        float_format="{:.2f}",
    )
    chart = line_chart([r for _, r in series], height=6,
                       title="daily decode:encode ratio:")
    emit("fig13_ramp", table + "\n\n" + chart)
    assert weekly[0][1] < 0.5
    assert weekly[-1][1] > 1.0
    ratios = [r for _, r in weekly]
    # Broadly monotone ramp (small weekly wiggle allowed).
    assert sum(1 for a, b in zip(ratios, ratios[1:]) if b >= a - 0.05) >= 10
