"""Figure 1: compression savings vs decompression speed, 4 JPEG-aware tools.

Paper series (p25/p50/p75 over 200k JPEGs): Lepton ≈23% savings at
~100+ Mbit/s decode; PackJPG matches the savings at ~an order of magnitude
lower speed (single-threaded, global, non-streaming); MozJPEG-arithmetic
≈12% savings; JPEGrescan ≈8–9%.

Substitutions (documented in DESIGN.md/EXPERIMENTS.md): absolute Mbit/s are
~1000× below the paper (pure Python), and Lepton's wall clock uses the
effective multithreaded time from ``decode_lepton_timed`` (max over its
independent segments) because the GIL hides real thread speedup.  The
JPEG-aware tools' *relative* savings, and Lepton-vs-PackJPG speed ordering,
are the reproduced shape.
"""

import time

import pytest

from _harness import bench_corpus, emit
from repro.analysis.stats import mbits_per_second, percentile
from repro.analysis.tables import format_table
from repro.baselines.registry import get_codec
from repro.core.decoder import decode_lepton_timed
from repro.core.lepton import LeptonConfig, compress

TOOLS = ["lepton", "packjpg", "mozjpeg", "jpegrescan"]
LEPTON_THREADS = 2


def _compress(tool, data):
    if tool == "lepton":
        result = compress(data, LeptonConfig(threads=LEPTON_THREADS))
        assert result.ok
        return result.payload
    return get_codec(tool).compress(data)


def _decode_seconds(tool, payload, original):
    if tool == "lepton":
        data, effective, _ = decode_lepton_timed(payload)
        assert data == original
        return effective
    codec = get_codec(tool)
    start = time.perf_counter()
    data = codec.decompress(payload)
    elapsed = time.perf_counter() - start
    assert data == original
    return elapsed


def _measure(tool, corpus):
    savings, speeds = [], []
    for item in corpus:
        payload = _compress(tool, item.data)
        elapsed = _decode_seconds(tool, payload, item.data)
        savings.append(100.0 * (1.0 - len(payload) / len(item.data)))
        speeds.append(mbits_per_second(len(item.data), elapsed))
    return savings, speeds


@pytest.mark.parametrize("tool", TOOLS)
def test_fig1_savings_vs_decode_speed(benchmark, tool):
    corpus = bench_corpus(sizes=(128, 192, 256))
    payloads = [(item, _compress(tool, item.data)) for item in corpus]
    benchmark.pedantic(
        lambda: [_decode_seconds(tool, p, item.data) for item, p in payloads],
        rounds=1, iterations=1,
    )
    savings, speeds = _measure(tool, corpus)
    table = format_table(
        ["tool", "sav_p25(%)", "sav_p50(%)", "sav_p75(%)",
         "dec_p25(Mbps)", "dec_p50(Mbps)", "dec_p75(Mbps)"],
        [[tool,
          percentile(savings, 25), percentile(savings, 50), percentile(savings, 75),
          percentile(speeds, 25), percentile(speeds, 50), percentile(speeds, 75)]],
        title=f"Figure 1 — {tool} (paper: lepton≈23%/fastest JPEG-aware, "
              "packjpg≈23%/9x slower, mozjpeg≈12%, jpegrescan≈9%)",
    )
    emit(f"fig1_{tool}", table)
    benchmark.extra_info["savings_p50"] = percentile(savings, 50)
    benchmark.extra_info["decode_mbps_p50"] = percentile(speeds, 50)


def test_fig1_shape_holds(benchmark):
    """Lepton matches PackJPG's savings and decodes faster; the small-bin
    and Huffman-only tools trail on savings."""
    corpus = bench_corpus(n=4, sizes=(192, 256))
    results = {}
    def run_all():
        for tool in TOOLS:
            savings, speeds = _measure(tool, corpus)
            results[tool] = (percentile(savings, 50), percentile(speeds, 50))
    benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[t, s, v] for t, (s, v) in results.items()]
    emit("fig1_summary", format_table(
        ["tool", "savings_p50(%)", "decode_p50(Mbps)"], rows,
        title="Figure 1 — all tools",
    ))
    assert results["lepton"][0] >= results["mozjpeg"][0] + 2
    assert results["lepton"][0] >= results["jpegrescan"][0] + 3
    assert abs(results["lepton"][0] - results["packjpg"][0]) < 6
    assert results["lepton"][1] > results["packjpg"][1]
