"""Shared helpers for the figure-regeneration benchmarks.

Every bench prints the same rows/series the corresponding paper figure
plots, and also writes them under ``benchmarks/results/`` so the output
survives pytest's capture.  Set ``REPRO_BENCH_SCALE=2`` (or higher) to run
larger corpora / longer simulations.
"""

import os
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Global effort multiplier for corpus sizes and sim durations.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def emit(name: str, text: str) -> None:
    """Print a figure's table and persist it to benchmarks/results/."""
    print(f"\n{text}\n", file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def bench_corpus(n: int = None, sizes=(64, 96, 128), seed: int = 1000):
    """The standard bench corpus: clean JPEGs at mixed sizes/qualities."""
    from repro.corpus.builder import jpeg_sweep

    count = n if n is not None else max(4, int(6 * SCALE))
    return jpeg_sweep(count, seed=seed, sizes=sizes, qualities=(75, 85, 92))
