"""Figure 6: compression savings are uniform across file sizes.

Paper: savings cluster around 22.7% across 0–4 MiB files; small images
still compress well because they get fewer threads (a higher proportion of
the image trains each bin).  We sweep sizes with production-style
size-based thread selection and check the flatness.
"""

from _harness import SCALE, emit
from repro.analysis.tables import format_table
from repro.core.lepton import LeptonConfig, compress
from repro.corpus.builder import corpus_jpeg

SIZES = [48, 64, 96, 128, 192, 256]


def test_fig6_savings_by_size(benchmark):
    def run():
        rows = []
        for px in SIZES:
            for seed in range(max(2, int(2 * SCALE))):
                data = corpus_jpeg(seed=6000 + seed, height=px, width=px,
                                   quality=85)
                result = compress(data, LeptonConfig())  # size-based threads
                assert result.ok
                rows.append((len(data), 100.0 * result.savings_fraction,
                             result.stats.thread_count))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("fig6_savings_by_size", format_table(
        ["file size (B)", "savings (%)", "threads"],
        [[size, sav, thr] for size, sav, thr in sorted(rows)],
        title="Figure 6 — savings vs file size (paper: uniform ≈22.7%)",
        float_format="{:.1f}",
    ))
    savings = [s for _, s, _ in rows]
    # Uniformity: all sizes compress, spread is moderate, and there is no
    # strong size trend (small files keep 1 thread so bins train well).
    assert min(savings) > 5.0
    small = [s for size, s, _ in rows if size < 2000]
    large = [s for size, s, _ in rows if size >= 2000]
    assert abs(sum(small) / len(small) - sum(large) / len(large)) < 15.0
