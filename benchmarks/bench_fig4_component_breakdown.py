"""Figure 4: compression ratio broken down by JPEG file component.

Paper rows (original-bytes share → compression ratio → bytes saved):

    Header   2.3%  → 47.6%  → 1.0%
    7x7 AC  49.7%  → 80.2%  → 9.8%
    7x1/1x7 39.8%  → 78.7%  → 8.6%
    DC       8.2%  → 59.9%  → 3.4%
    Total    100%  → 77.3%  → 22.7%

The reproduced shape: DC compresses far better than the AC families
(gradient prediction), the AC families land near each other in the high
70s–80s, and the header roughly halves under zlib.
"""

import zlib

import pytest

from _harness import SCALE, emit
from repro.analysis.tables import format_table
from repro.core.lepton import LeptonConfig, compress
from repro.corpus.builder import jpeg_sweep

# Larger images: the paper's 2.3% header share needs real files; at our
# scale the header is bigger relative to the scan, so the assertions below
# check orderings rather than the absolute shares.
CORPUS = jpeg_sweep(max(4, int(5 * SCALE)), seed=4000, sizes=(192, 256))


def _component_rows():
    totals = {"header": [0.0, 0.0], "7x7": [0.0, 0.0],
              "edge": [0.0, 0.0], "dc": [0.0, 0.0]}
    for item in CORPUS:
        result = compress(item.data, LeptonConfig(threads=1, collect_breakdown=True))
        assert result.ok
        stats = result.stats
        original = dict(stats.original_bits)
        coded = dict(stats.bit_costs)
        # nnz bits are part of the 7x7 section's cost.
        coded["7x7"] = coded.get("7x7", 0.0) + coded.pop("nnz", 0.0)
        original["7x7"] = original.get("7x7", 0.0) + original.pop("nnz", 0.0)
        # Header: original bytes vs its zlib'd size in the container.
        from repro.jpeg.parser import parse_jpeg

        img = parse_jpeg(item.data)
        header_bytes = len(img.header_bytes) + len(img.trailer_bytes)
        header_coded = len(zlib.compress(img.header_bytes + img.trailer_bytes, 9))
        totals["header"][0] += 8.0 * header_bytes
        totals["header"][1] += 8.0 * header_coded
        for key in ("7x7", "edge", "dc"):
            totals[key][0] += original[key]
            totals[key][1] += coded[key]
    return totals


def test_fig4_component_breakdown(benchmark):
    totals = benchmark.pedantic(_component_rows, rounds=1, iterations=1)
    grand_original = sum(v[0] for v in totals.values())
    rows = []
    label = {"header": "Header", "7x7": "7x7 AC", "edge": "7x1/1x7", "dc": "DC"}
    for key in ("header", "7x7", "edge", "dc"):
        original, coded = totals[key]
        rows.append([
            label[key],
            100.0 * original / grand_original,
            100.0 * coded / original,
            100.0 * (original - coded) / grand_original,
        ])
    total_coded = sum(v[1] for v in totals.values())
    rows.append(["Total", 100.0,
                 100.0 * total_coded / grand_original,
                 100.0 * (grand_original - total_coded) / grand_original])
    table = format_table(
        ["category", "original(%)", "ratio(%)", "saved(%)"],
        rows,
        title="Figure 4 — component breakdown "
              "(paper: header 2.3/47.6/1.0, 7x7 49.7/80.2/9.8, "
              "edge 39.8/78.7/8.6, DC 8.2/59.9/3.4, total 77.3/22.7)",
        float_format="{:.1f}",
    )
    emit("fig4_breakdown", table)

    by = {row[0]: row for row in rows}
    # DC compresses much better than the AC families (gradient prediction).
    assert by["DC"][2] < by["7x7 AC"][2] - 10
    assert by["DC"][2] < by["7x1/1x7"][2] - 10
    # The AC families are the bulk of the original scan bytes.
    assert by["7x7 AC"][1] + by["7x1/1x7"][1] > 50
    # Headers compress roughly in half (zlib on marker segments).
    assert by["Header"][2] < 80
    # Total shows real savings.
    assert by["Total"][3] > 10
