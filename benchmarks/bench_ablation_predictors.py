"""§4.3 ablations: what each prediction technique buys.

Paper: Lakhani-inspired edge prediction improved 7x1/1x7 compression from
82.5% to 78.7% of original (≈1.5% of total savings); DC gradient prediction
improved DC from 79.4% (baseline-PackJPG-style) to 59.9% (≈1.6% of total);
the first-cut median-of-8 DC predictor reaches ≈30% DC savings vs ≈40% for
the full gradient scheme (§A.2.3).
"""

import pytest

from _harness import SCALE, emit
from repro.analysis.tables import format_table
from repro.core.lepton import LeptonConfig, compress
from repro.core.model import ModelConfig
from repro.corpus.builder import jpeg_sweep

CORPUS = jpeg_sweep(max(3, int(4 * SCALE)), seed=5000, sizes=(96, 128, 192))


def _category_ratio(model: ModelConfig, category: str) -> float:
    """Coded bits / original Huffman bits for one component category."""
    original = coded = 0.0
    for item in CORPUS:
        result = compress(
            item.data,
            LeptonConfig(threads=1, model=model, collect_breakdown=True),
        )
        assert result.ok
        coded += result.stats.bit_costs[category]
        original += result.stats.original_bits[category]
    return 100.0 * coded / original


def test_ablation_edge_prediction(benchmark):
    """Lakhani vs same-prediction-for-all-AC (baseline PackJPG)."""
    def run():
        return (
            _category_ratio(ModelConfig(edge_mode="lakhani"), "edge"),
            _category_ratio(ModelConfig(edge_mode="avg"), "edge"),
        )

    lakhani, avg = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_edge", format_table(
        ["edge predictor", "edge ratio (%)"],
        [["lakhani", lakhani], ["weighted-avg (packjpg 2007)", avg]],
        title="§4.3 edge ablation (paper: 78.7% vs 82.5%)",
        float_format="{:.1f}",
    ))
    assert lakhani < avg  # Lakhani must be strictly better


def test_ablation_dc_prediction(benchmark):
    """Gradient vs median-8 first cut vs neighbour-DC (packjpg style)."""
    def run():
        return {
            mode: _category_ratio(ModelConfig(dc_mode=mode), "dc")
            for mode in ("gradient", "median8", "packjpg")
        }

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_dc", format_table(
        ["dc predictor", "dc ratio (%)"],
        [[mode, value] for mode, value in ratios.items()],
        title="§4.3/§A.2.3 DC ablation (paper: 59.9% gradient vs 79.4% "
              "packjpg-style; median8 in between)",
        float_format="{:.1f}",
    ))
    assert ratios["gradient"] < ratios["median8"] < ratios["packjpg"]


def test_ablation_total_contribution(benchmark):
    """Both techniques together contribute percentage points of *total*
    savings (paper: ≈1.5% + 1.6%)."""
    def run():
        full, degraded = 0, 0
        for item in CORPUS:
            full += compress(
                item.data, LeptonConfig(threads=1)
            ).output_size
            degraded += compress(
                item.data,
                LeptonConfig(threads=1, model=ModelConfig(edge_mode="avg",
                                                          dc_mode="packjpg")),
            ).output_size
        return full, degraded

    full, degraded = benchmark.pedantic(run, rounds=1, iterations=1)
    original = sum(len(item.data) for item in CORPUS)
    gain_points = 100.0 * (degraded - full) / original
    emit("ablation_total", format_table(
        ["model", "total ratio (%)"],
        [["full lepton", 100.0 * full / original],
         ["no lakhani, no DC gradients", 100.0 * degraded / original],
         ["contribution (points)", gain_points]],
        title="§4.3 combined ablation (paper: ≈3.1 points of savings)",
        float_format="{:.2f}",
    ))
    assert full < degraded
    assert gain_points > 0.5
