"""Figure 3: maximum resident memory per codec, encode and decode.

Paper: single-threaded Lepton decodes in a hard 24 MiB; multithreaded
Lepton ≈39 MiB at p99; PackJPG/MozJPEG/PAQ8PX need 69–192 MiB because they
hold the whole image (or more); generic codecs are tiny.  We measure peak
*allocated* memory with tracemalloc — absolute numbers are Python-object
sizes, but the orderings (streaming Lepton decode < whole-file tools;
encode ≈ whole-file for everyone, §4.2) are the reproduced shape.

The streaming decode measured here is the same ``DecodeSession`` row
window every entry point uses: coefficients live in a sliding band of
block rows, so the decode working set scales with image width, not area
(tests/core/test_session.py pins this with a tracemalloc ratio).
"""

import tracemalloc

import pytest

from _harness import emit
from repro.analysis.tables import format_table
from repro.baselines.registry import all_codecs, get_codec
from repro.corpus.builder import corpus_jpeg

DATA = corpus_jpeg(seed=3000, height=192, width=192, quality=88)
CODECS = ["lepton", "lepton-1way", "packjpg", "jpegrescan", "mozjpeg",
          "deflate", "lzma", "zstandard"]


def _peak(fn) -> int:
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


@pytest.mark.parametrize("name", CODECS)
def test_fig3_memory(benchmark, name):
    codec = get_codec(name)
    payload = codec.compress(DATA)

    def measure():
        enc_peak = _peak(lambda: codec.compress(DATA))
        dec_peak = _peak(lambda: codec.decompress(payload))
        return enc_peak, dec_peak

    enc_peak, dec_peak = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(f"fig3_{name}", format_table(
        ["codec", "encode_peak(KiB)", "decode_peak(KiB)"],
        [[name, enc_peak / 1024, dec_peak / 1024]],
        title=f"Figure 3 — {name} (paper: lepton decode 24–39 MiB, "
              "others 69–192 MiB; scaled here)",
    ))
    benchmark.extra_info["decode_peak_kib"] = dec_peak / 1024


def test_fig3_orderings(benchmark):
    """The paper's actual Figure-3 point: Lepton's bounded row-by-row
    decode (24 MiB hard cap in production) undercuts the whole-file tools,
    and generic codecs use the least of all."""
    from repro.core.decoder import decode_lepton_bounded
    from repro.core.lepton import LeptonConfig, compress

    peaks = {}

    def run_all():
        for name in ("lepton-1way", "packjpg", "deflate"):
            codec = get_codec(name)
            payload = codec.compress(DATA)
            peaks[name] = _peak(lambda c=codec, p=payload: c.decompress(p))
        bounded_payload = compress(DATA, LeptonConfig(threads=1)).payload
        peaks["lepton-bounded"] = _peak(
            lambda: b"".join(decode_lepton_bounded(bounded_payload))
        )

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("fig3_summary", format_table(
        ["codec", "decode_peak(KiB)"],
        [[n, v / 1024] for n, v in peaks.items()],
        title="Figure 3 — decode peaks (paper: lepton 24–39 MiB ≪ "
              "packjpg/mozjpeg/paq 69–192 MiB)",
    ))
    # Generic codecs use the least; whole-file JPEG tools hold all
    # coefficients; Lepton's row-bounded decode sits below them.
    assert peaks["deflate"] < peaks["lepton-1way"]
    assert peaks["deflate"] < peaks["packjpg"]
    assert peaks["lepton-bounded"] < peaks["packjpg"]


def test_fig3_bounded_decode_memory_is_flat_in_image_height(benchmark):
    """The structural claim behind Lepton's 24-MiB figure: its working set
    is model + a row window (≈ fixed), while whole-file decoders grow with
    the image.  Both pay the (content-proportional) model; the coefficient
    arrays are what separates them."""
    from repro.baselines import packjpg_like
    from repro.core.decoder import decode_lepton_bounded
    from repro.core.lepton import LeptonConfig, compress

    def peaks_at(height):
        data = corpus_jpeg(seed=3100, height=height, width=128, quality=88)
        bounded_payload = compress(data, LeptonConfig(threads=1)).payload
        packjpg_payload = packjpg_like.compress(data)
        bounded = _peak(lambda: b"".join(decode_lepton_bounded(bounded_payload)))
        whole = _peak(lambda: packjpg_like.decompress(packjpg_payload))
        return bounded, whole

    def run():
        return peaks_at(96), peaks_at(288)

    (b_small, w_small), (b_tall, w_tall) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit("fig3_growth", format_table(
        ["decoder", "96-tall peak (KiB)", "288-tall peak (KiB)", "growth"],
        [["lepton-bounded", b_small / 1024, b_tall / 1024, b_tall / b_small],
         ["packjpg (whole-file)", w_small / 1024, w_tall / 1024, w_tall / w_small]],
        title="Figure 3 — decode working set vs image height (3x pixels)",
        float_format="{:.2f}",
    ))
    # The whole-file decoder's footprint grows markedly faster.
    assert (w_tall / w_small) > 1.25 * (b_tall / b_small)
