"""Figure 9: p99 of concurrent Lepton processes, per outsourcing strategy.

Paper (Sept 15, threshold 4): the Control fleet routinely sees 11–25
simultaneous conversions on individual blockservers at peak; outsourcing
caps the pile-ups — To-dedicated the hardest, To-self in between.

The series is read from each simulation's MetricsRegistry (the
``fleet.concurrency{hour}`` histograms of docs/observability.md), not from
private simulator state, so this figure and the fleet telemetry cannot
drift apart.
"""

from _harness import SCALE, emit
from repro.analysis.tables import format_table
from repro.storage.fleet import FleetConfig, FleetSim
from repro.storage.outsourcing import Strategy

DURATION_HOURS = 2.0 * SCALE
STRATEGIES = [Strategy.CONTROL, Strategy.TO_SELF, Strategy.TO_DEDICATED]


def _run(strategy):
    config = FleetConfig(duration_hours=DURATION_HOURS, strategy=strategy,
                         threshold=4, burst_mean=8.0, seed=15)
    return FleetSim(config).run()


def test_fig9_concurrent_processes(benchmark):
    metrics = benchmark.pedantic(
        lambda: {s: _run(s) for s in STRATEGIES}, rounds=1, iterations=1
    )
    rows = []
    peaks = {}
    for strategy, m in metrics.items():
        # Straight off the registry: one concurrency histogram per hour.
        hourly = sorted(
            (int(labels["hour"]), float(hist.quantile(0.99)))
            for labels, hist in m.registry.series("fleet.concurrency")
        )
        peak = max(v for _, v in hourly)
        peaks[strategy] = peak
        for hour, value in hourly:
            rows.append([strategy.value, hour, value])
    emit("fig9_concurrency", format_table(
        ["strategy", "hour", "p99 concurrent lepton processes"],
        rows,
        title="Figure 9 — concurrency p99 by strategy, threshold 4 "
              "(paper: control spikes to ~15–25; outsourcing flattens)",
        float_format="{:.1f}",
    ))
    assert peaks[Strategy.CONTROL] > peaks[Strategy.TO_DEDICATED]
    assert peaks[Strategy.CONTROL] > peaks[Strategy.TO_SELF]
    # The dedicated strategy keeps blockservers at/near the threshold.
    assert peaks[Strategy.TO_DEDICATED] <= 4 + 2
