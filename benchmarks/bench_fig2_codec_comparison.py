"""Figure 2: savings and encode/decode speed of all 11 codecs.

Paper values (% savings): Lepton 22.4, Lepton 1-way 23.2, PackJPG 23.0,
PAQ8PX 24.0, JPEGrescan 8.3, MozJPEG 12.0, Brotli 0.9, Deflate 1.0,
LZham 0, LZMA 1.0, ZStandard 0.8 — on a corpus *including* the 3.6% of
chunks Lepton rejects.  Generic codecs are fast but only compress the
header; JPEG-aware codecs compress well but are slow; Lepton is both.

Savings here are byte-weighted over a corpus of clean JPEGs plus full-size
reject files (a progressive JPEG and a non-image) in roughly the paper's
spirit.  JPEG-aware codecs score 0% on inputs they reject (production
stores Deflate for those).  "lepton" is forced to 2 thread segments so the
multithreading penalty vs "lepton-1way" is visible on small files.
"""

import time

import pytest

from _harness import SCALE, emit
from repro.analysis.stats import percentile
from repro.analysis.tables import format_table
from repro.baselines.registry import all_codecs, get_codec
from repro.core.lepton import LeptonConfig, compress as lepton_compress, decompress as lepton_decompress
from repro.corpus.builder import jpeg_sweep
from repro.corpus import corruptions


def _corpus():
    files = jpeg_sweep(max(5, int(6 * SCALE)), seed=2000, sizes=(128, 192, 256))
    base = files[0].data
    from repro.corpus.builder import CorpusFile

    files.append(CorpusFile("progressive", corruptions.make_progressive(base),
                            "progressive"))
    files.append(CorpusFile("not_image",
                            corruptions.not_an_image(size=4096, seed=7),
                            "not_image"))
    return files


CORPUS = _corpus()


def _codec_fns(name):
    if name == "lepton":
        def comp(data):
            result = lepton_compress(data, LeptonConfig(threads=2,
                                                        deflate_fallback=False))
            if not result.ok:
                raise ValueError(result.exit_code.value)
            return result.payload

        return comp, lepton_decompress
    codec = get_codec(name)
    return codec.compress, codec.decompress


def _run_codec(name):
    comp, decomp = _codec_fns(name)
    bytes_in = bytes_out = 0
    enc_times, dec_times = [], []
    for item in CORPUS:
        bytes_in += len(item.data)
        t0 = time.perf_counter()
        try:
            payload = comp(item.data)
            enc_times.append(time.perf_counter() - t0)
            t1 = time.perf_counter()
            out = decomp(payload)
            dec_times.append(time.perf_counter() - t1)
            assert out == item.data
            bytes_out += len(payload)
        except Exception:
            bytes_out += len(item.data)  # stored uncompressed-equivalent
    savings = 100.0 * (1.0 - bytes_out / bytes_in)
    return savings, enc_times, dec_times


@pytest.mark.parametrize("name", [c.name for c in all_codecs()])
def test_fig2_codec(benchmark, name):
    savings, enc_times, dec_times = benchmark.pedantic(
        lambda: _run_codec(name), rounds=1, iterations=1
    )
    codec = get_codec(name)
    table = format_table(
        ["codec", "savings(%)", "enc_p50(s)", "enc_p99(s)",
         "dec_p50(s)", "dec_p99(s)"],
        [[name, savings,
          percentile(enc_times, 50), percentile(enc_times, 99),
          percentile(dec_times, 50), percentile(dec_times, 99)]],
        title=f"Figure 2 — {name}"
              + (f" [{codec.substitution_note}]" if codec.substitution_note else ""),
        float_format="{:.4f}",
    )
    emit(f"fig2_{name}", table)
    benchmark.extra_info["savings"] = savings


def test_fig2_shape(benchmark):
    """The three-group structure of Figure 2."""
    results = {}

    def run_all():
        for codec in all_codecs():
            results[codec.name] = _run_codec(codec.name)[0]

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("fig2_summary", format_table(
        ["codec", "savings(%)"],
        [[name, val] for name, val in results.items()],
        title="Figure 2 — byte-weighted savings over the mixed corpus "
              "(paper: 22.4/23.2/23.0/24.0/8.3/12.0/0.9/1.0/0/1.0/0.8)",
    ))
    # Format-aware, file-preserving codecs cluster at the top...
    for strong in ("lepton", "lepton-1way", "packjpg", "paq8px"):
        assert results[strong] > 12, strong
    # ... pixel-exact-only tools sit in the middle ...
    assert 2 < results["jpegrescan"] < results["lepton"]
    assert 2 < results["mozjpeg"] < results["lepton"]
    # ... generic codecs compress essentially only the header.
    for generic in ("deflate", "lzma", "zstandard", "brotli", "lzham"):
        assert results[generic] < results["mozjpeg"], generic
    # 1-way ≥ multithreaded lepton (per-thread model restarts cost bytes).
    assert results["lepton-1way"] > results["lepton"]
