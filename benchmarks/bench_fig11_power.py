"""Figure 11: datacenter power across a backfill outage.

Paper (Sept 26, 2016): the fleet idles at ~278 kW with backfill running
~5,600 conversions/s; during the outage "the power usage dropped by
121 kW" and conversions fell to zero, then both stepped back up on resume.
"""

import pytest

from _harness import emit
from repro.analysis.tables import format_table
from repro.storage.power import BACKFILL_DYNAMIC_KW, power_timeseries


def test_fig11_power_series(benchmark):
    series = benchmark.pedantic(
        lambda: power_timeseries(hours=30, outage_start=9, outage_end=15,
                                 sample_minutes=30, seed=17),
        rounds=1, iterations=1,
    )
    rows = [[t, kw, cps] for t, kw, cps in series]
    from repro.analysis.charts import line_chart

    table = format_table(
        ["hour", "chassis power (kW)", "conversions/s"],
        rows,
        title="Figure 11 — power and conversion rate across the outage "
              "(paper: ~278 kW, −121 kW during outage, ~5,583 conv/s)",
        float_format="{:.1f}",
    )
    chart = line_chart([kw for _, kw, _ in series], height=6,
                       title="chassis kW over the outage window:")
    emit("fig11_power", table + "\n\n" + chart)
    during = [(kw, cps) for t, kw, cps in series if 10 <= t < 14]
    outside = [(kw, cps) for t, kw, cps in series if t < 8 or t > 16]
    avg_during = sum(k for k, _ in during) / len(during)
    avg_outside = sum(k for k, _ in outside) / len(outside)
    assert avg_outside - avg_during == pytest.approx(BACKFILL_DYNAMIC_KW, rel=0.07)
    assert max(c for _, c in during) == 0.0
    assert min(c for _, c in outside) > 5000
