"""Recovery policies under a fault plan: availability and tail latency.

The robustness claim behind `lepton chaos`: with retry + circuit breakers
+ hedged conversions enabled, the simulated fleet sustains strictly higher
conversion availability *and* a strictly lower p99 than the same fleet,
same seed, same fault plan with every policy disabled.

The plan is slowdown-heavy by design.  Network-loss windows reward the
policy-free fleet with survivor bias (its timed-out jobs vanish from the
latency distribution instead of completing late), which is exactly the
accounting artifact §6.1's "never return corrupted data, never time out"
framing warns against — so this figure stresses crashes and 8x slow nodes,
where hedging rescues stragglers instead of merely reviving casualties.

The second scenario is the storage-side sibling (`lepton chaos
--backend`, docs/durability.md): the crash-recovery kill-point sweep plus
the replicated scrub/repair drill, run to a `DurabilityReport` whose
verdict the table summarises.
"""

import pytest

from _harness import SCALE, emit
from repro.analysis.tables import format_table
from repro.faults.chaos import run_backend_chaos, run_fleet_chaos
from repro.faults.plan import FaultPlan

HOURS = 0.3 * max(1.0, SCALE)
PLAN = FaultPlan.generate(
    seed=7,
    duration=HOURS * 3600.0,
    crashes=2,
    slowdowns=3,
    slow_factor=8.0,
    slow_duration=500.0,
    network_windows=0,
)


def _run(policies: bool):
    metrics, _breakers = run_fleet_chaos(PLAN, seed=7, hours=HOURS,
                                         policies=policies)
    percentiles = metrics.latency_percentiles(qs=(50, 99))
    return {
        "availability": metrics.availability(),
        "abandoned": metrics.abandoned(),
        "p50": percentiles[50],
        "p99": percentiles[99],
    }


def test_chaos_availability(benchmark):
    def run():
        return _run(policies=True), _run(policies=False)

    with_policies, without = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("chaos_availability", format_table(
        ["fleet", "availability", "abandoned", "p50 (s)", "p99 (s)"],
        [
            ["retry+breakers+hedging", with_policies["availability"],
             with_policies["abandoned"], with_policies["p50"],
             with_policies["p99"]],
            ["no policies", without["availability"],
             without["abandoned"], without["p50"], without["p99"]],
        ],
        title=f"chaos plan seed=7 ({PLAN.summary()['crashes']} crashes, "
              f"{PLAN.summary()['slowdowns']} slowdowns, {HOURS:.1f}h)",
        float_format="{:.4f}",
    ))
    # The headline claim: better on BOTH axes, not a latency trade.
    assert with_policies["availability"] > without["availability"]
    assert with_policies["p99"] < without["p99"]
    assert with_policies["abandoned"] <= without["abandoned"]


DURABILITY_SEED = 3
DURABILITY_READS = int(40 * max(1.0, SCALE))
DURABILITY_PLAN = FaultPlan.generate(seed=DURABILITY_SEED, duration=60.0)


def test_backend_durability(benchmark):
    def run():
        return run_backend_chaos(DURABILITY_PLAN, seed=DURABILITY_SEED,
                                 reads=DURABILITY_READS, replicas=3)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    outcomes = sorted(set(report.kill_points.values()))
    emit("chaos_durability", format_table(
        ["check", "value"],
        [
            ["kill points recovered",
             f"{len(report.kill_points)} ({'/'.join(outcomes)})"],
            ["at-rest corruptions", report.at_rest_corruptions],
            ["scrub detected / repaired",
             f"{report.scrub_detected} / {report.scrub_repaired}"],
            ["in-band read repairs", report.read_repairs],
            ["reads served / degraded / wrong bytes",
             f"{report.reads_served} / {report.reads_degraded} / "
             f"{report.wrong_bytes}"],
            ["unrepairable chunks", report.scrub_unrepairable],
            ["final scrub pass clean", report.second_pass_clean],
            ["replicas converged", report.replicas_converged],
            ["durable", report.durable],
        ],
        title=f"backend durability drill seed={DURABILITY_SEED} "
              f"(3 replicas, {DURABILITY_READS} reads)",
    ))
    # The §5.7 verdict, and proof both repair paths actually ran.
    assert report.durable
    assert report.kill_points_ok and len(report.kill_points) >= 8
    assert report.wrong_bytes == 0
    assert report.scrub_repaired > 0       # scrubber healed round one
    assert report.read_repairs > 0         # reads healed round two in-band


def test_live_kill_recover_drill(benchmark):
    """The deployment-level sibling (docs/serve.md, "Request lifecycle"):
    real ``lepton serve`` subprocesses SIGKILLed at one kill point per
    protocol partition, restarted, and made to serve every acked byte.

    The committed artifact is the drill's byte-reproducible report: no
    timings, ports, or paths, so a regression shows up as a one-word
    diff in the affected kill point's outcome.
    """
    from repro.faults.livechaos import REDUCED_SWEEP, run_live_chaos

    def run():
        return run_live_chaos(points=REDUCED_SWEEP, seed=0)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("chaos_live", report.render())
    assert report.survivable
    assert report.uploads_resumed == report.uploads_interrupted > 0
    assert report.reads_interrupted > 0
