"""Thread-count vs compression ablation (§3.4, §4.1).

"Adding threads decreases compression savings, because each thread's model
starts with 50-50 probabilities and adapts independently."  The paper's
Figure 2 shows the endpoint (Lepton 22.4% vs Lepton 1-way 23.2%); this
bench sweeps the whole curve.
"""

from _harness import SCALE, emit
from repro.analysis.tables import format_table
from repro.core.lepton import LeptonConfig, compress
from repro.corpus.builder import jpeg_sweep

CORPUS = jpeg_sweep(max(3, int(4 * SCALE)), seed=7100, sizes=(128, 192))
THREADS = [1, 2, 4, 8]


def test_threads_cost_compression(benchmark):
    def run():
        results = {}
        for threads in THREADS:
            total_in = total_out = 0
            for item in CORPUS:
                result = compress(item.data, LeptonConfig(threads=threads))
                assert result.ok
                total_in += result.input_size
                total_out += result.output_size
            results[threads] = 100.0 * (1.0 - total_out / total_in)
        return results

    savings = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_threads", format_table(
        ["thread segments", "savings (%)", "penalty vs 1-way (points)"],
        [[t, savings[t], savings[1] - savings[t]] for t in THREADS],
        title="§3.4 — thread segments vs savings "
              "(paper endpoint: 23.2% 1-way vs 22.4% multithreaded)",
        float_format="{:.2f}",
    ))
    # Monotone: every extra split costs bytes, never gains.
    for a, b in zip(THREADS, THREADS[1:]):
        assert savings[b] <= savings[a] + 0.05
    assert savings[1] - savings[2] > 0.0
    # On our ~100x-smaller files each split hurts far more than the
    # paper's 0.8 points (each segment has ~100x less data to train its
    # bins); even so, 8-way must retain real savings.
    assert savings[8] > 5.0
