"""Lint runtime: full analysis vs the content-hash cache vs `--changed`.

The dataflow rules (D7–D10) made `lepton lint` do real work per function
— CFG construction plus a fixpoint per rule — so the incremental path
has to carry its weight.  Three measurements over the shipped tree:

* **full (cold)** — parse + every rule on every module, empty cache;
* **full (warm)** — same tree, cache populated by the cold run: the
  per-module passes come back as cache hits, only the project-wide
  rules (D3, D7's closure) recompute;
* **changed (git)** — the `--changed` file selection itself, i.e. what
  a developer pays before any linting starts.

The warm run must reproduce the cold run's findings exactly — that is
the ISSUE 7 acceptance bar for the cache, asserted here on every bench
run, not just in the unit tests.
"""

import time
from pathlib import Path

from _harness import emit

import repro
from repro.analysis.tables import format_table
from repro.lint import LintCache, LintEngine, collect_files
from repro.lint.cache import GitUnavailable, changed_files
from repro.lint.engine import load_module


def _ms(start: float) -> float:
    return (time.perf_counter() - start) * 1000.0


def test_lint_runtime(benchmark, tmp_path):
    root = Path(repro.__file__).resolve().parent
    files = collect_files([root])
    cache_path = tmp_path / "lint-cache.json"

    def _run():
        engine = LintEngine()

        start = time.perf_counter()
        cold_cache = LintCache(cache_path)
        cold = engine.run(files, cache=cold_cache)
        cold_cache.save()
        cold_ms = _ms(start)

        start = time.perf_counter()
        warm_cache = LintCache(cache_path)
        warm = engine.run(files, cache=warm_cache)
        warm_ms = _ms(start)

        start = time.perf_counter()
        try:
            touched = changed_files(root)
            changed_label = f"{len(touched)} files"
        except GitUnavailable:
            touched = None
            changed_label = "git n/a"
        changed_ms = _ms(start)

        return (cold, cold_ms, warm, warm_cache, warm_ms,
                changed_label, changed_ms)

    (cold, cold_ms, warm, warm_cache, warm_ms,
     changed_label, changed_ms) = benchmark.pedantic(
        _run, rounds=1, iterations=1)

    # The acceptance bar: incremental must equal full, finding for finding.
    assert warm == cold
    assert warm_cache.hits == len(files) and warm_cache.misses == 0

    rows = [
        ("full (cold)", f"{len(files)} files", len(cold), f"{cold_ms:.1f}"),
        ("full (warm cache)", f"{warm_cache.hits} hits", len(warm),
         f"{warm_ms:.1f}"),
        ("changed selection", changed_label, "-", f"{changed_ms:.1f}"),
    ]
    table = format_table(
        ["mode", "scope", "findings", "ms"],
        rows,
        title=f"lepton lint runtime over {root.name}/ "
              "(per-module passes cached by content hash; project-wide "
              "rules always recomputed)",
    )
    emit("lint_runtime", table)
