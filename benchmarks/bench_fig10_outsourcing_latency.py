"""Figure 10: compression-latency percentiles per strategy × threshold.

Paper: at peak, outsourcing halves the p99 (1.63 s → 1.08 s) and cuts the
p95 by ~25%; To-dedicated helps the p99 most, while To-self also reduces
the p50 by removing hotspots.  §5.5 also reports the 7.9% TCP-vs-unix-
socket overhead, asserted here directly from the model constant.

Percentiles come from each simulation's MetricsRegistry — the
``fleet.conversion.latency_seconds{kind}`` streaming histograms and the
``fleet.jobs.*`` counters of docs/observability.md — not from private
simulator state.
"""

from _harness import SCALE, emit
from repro.analysis.tables import format_table
from repro.storage.fleet import FleetConfig, FleetSim
from repro.storage.outsourcing import TCP_OVERHEAD, Strategy

DURATION_HOURS = 1.5 * SCALE


def _run(strategy, threshold, seed=16):
    config = FleetConfig(duration_hours=DURATION_HOURS, strategy=strategy,
                         threshold=threshold, burst_mean=8.0, seed=seed)
    return FleetSim(config).run()


def test_fig10_outsourcing_latency(benchmark):
    grid = [(Strategy.CONTROL, 3), (Strategy.TO_SELF, 3), (Strategy.TO_SELF, 4),
            (Strategy.TO_DEDICATED, 3), (Strategy.TO_DEDICATED, 4)]
    metrics = benchmark.pedantic(
        lambda: {key: _run(*key) for key in grid}, rounds=1, iterations=1
    )
    rows = []
    p = {}
    for (strategy, threshold), m in metrics.items():
        hist = m.registry.get("fleet.conversion.latency_seconds",
                              kind="lepton_encode")
        pct = {q: hist.quantile(q / 100.0) for q in (50, 75, 95, 99)}
        completed = sum(
            counter.value
            for _, counter in m.registry.series("fleet.jobs.completed")
        )
        outsourced = sum(
            counter.value
            for _, counter in m.registry.series("fleet.jobs.outsourced")
        )
        p[(strategy, threshold)] = pct
        rows.append([strategy.value, threshold, pct[50], pct[75], pct[95],
                     pct[99], outsourced / completed])
    emit("fig10_latency", format_table(
        ["strategy", "threshold", "p50(s)", "p75(s)", "p95(s)", "p99(s)",
         "outsourced"],
        rows,
        title="Figure 10 — encode latency percentiles at peak "
              "(paper: outsourcing halves p99 1.63→1.08 s; to-self also "
              "cuts p50)",
    ))
    control = p[(Strategy.CONTROL, 3)]
    dedicated = p[(Strategy.TO_DEDICATED, 3)]
    to_self = p[(Strategy.TO_SELF, 3)]
    # Outsourcing cuts the tail substantially...
    assert dedicated[99] < 0.8 * control[99]
    assert to_self[99] < control[99]
    # ...and p95 benefits too.
    assert dedicated[95] < control[95]
    # To-self rebalancing also helps the median (fewer hotspots).
    assert to_self[50] <= control[50] * 1.02


def test_tcp_overhead_constant(benchmark):
    """§5.5: "The overhead from switching from a Unix-domain socket to a
    remote TCP socket was 7.9% on average"."""
    benchmark.pedantic(lambda: TCP_OVERHEAD, rounds=1, iterations=1)
    assert TCP_OVERHEAD == 0.079
