"""§6.2: the exit-code distribution over a backfill run.

Paper table (first 2 months of backfill): Success 94.069%, Progressive
3.043%, Unsupported JPEG 1.535%, Not an image 0.801%, 4-color CMYK 0.478%,
plus a long tail of resource/assert codes.  Our corpus injects the same
categories at scaled-up rates (parts-per-thousand would be invisible on a
small corpus); the reproduced shape is the *ordering*: success dominates,
progressive is the largest reject class, and every reject is classified —
never crashed on.

The table is read from the worker's MetricsRegistry — the
``backfill.exit_codes{code}`` counter family and ``backfill.bytes_*``
counters of docs/observability.md — so the reproduced §6.2 table is the
telemetry, not a parallel tally.
"""

from _harness import SCALE, emit
from repro.analysis.tables import format_table
from repro.core.errors import ExitCode
from repro.core.lepton import LeptonConfig
from repro.corpus.builder import build_corpus
from repro.obs import MetricsRegistry
from repro.storage.backfill import BackfillWorker, Metaserver, UserFile


def test_exit_code_distribution(benchmark):
    corpus = build_corpus(
        n_jpegs=max(10, int(12 * SCALE)),
        seed=6000,
        # Progressive is the dominant reject class (paper: 3.04% vs 1.54%
        # for the generic "Unsupported" bucket, which here aggregates the
        # header-only/truncated/zero-run/arithmetic categories).
        reject_profile={
            "progressive": 5, "not_image": 1, "cmyk": 1, "header_only": 1,
            "truncated": 1, "zero_run": 1, "garbage_trailer": 1,
            "arithmetic": 1,
        },
    )
    users = {
        i: [UserFile(f"{item.name}.jpg", item.data)]
        for i, item in enumerate(corpus)
    }

    def run():
        meta = Metaserver(users, n_shards=1, chunk_size=1 << 22)
        worker = BackfillWorker(meta, lambda k, v: None, LeptonConfig(threads=1),
                                registry=MetricsRegistry())
        worker.process_shard(0)
        return worker

    worker = benchmark.pedantic(run, rounds=1, iterations=1)
    registry = worker.registry
    rows = [list(row) for row in worker.exit_sink.table()]
    total = int(registry.counter("backfill.chunks_processed").value)
    emit("exit_codes", format_table(
        ["exit code", "count", "share (%)"],
        rows,
        title="§6.2 — exit codes over a backfill run "
              "(paper: Success 94.07%, Progressive 3.04%, Unsupported 1.54%, "
              "Not-an-image 0.80%, CMYK 0.48%, ...)",
        float_format="{:.1f}",
    ))
    codes = worker.exit_sink.counts()
    assert sum(codes.values()) == total
    # Success dominates.
    assert codes[ExitCode.SUCCESS] > total * 0.5
    # Progressive is the largest reject class, as in the paper.
    rejects = {c: n for c, n in codes.items() if c is not ExitCode.SUCCESS}
    assert max(rejects, key=rejects.get) is ExitCode.PROGRESSIVE
    # Every rejected category was classified, none crashed the worker.
    assert {ExitCode.CMYK, ExitCode.NOT_AN_IMAGE} <= set(codes)
    assert registry.counter("backfill.verification_failures").value == 0
    # Compression achieved real savings on the files that succeeded.
    bytes_in = registry.counter("backfill.bytes_in").value
    bytes_out = registry.counter("backfill.bytes_out").value
    assert 1.0 - bytes_out / bytes_in > 0.03
