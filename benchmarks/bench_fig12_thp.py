"""Figure 12: decode latency percentiles across the THP flip.

Paper (April 13, 03:00): with transparent huge pages enabled, p99 decode
latency ran ~0.5–0.7 s on affected machines, with the *tail* hit far harder
than the median (stalls amortise over ~10 decodes); disabling THP stepped
the percentiles down immediately.
"""

from _harness import SCALE, emit
from repro.analysis.tables import format_table
from repro.storage.fleet import FleetConfig
from repro.storage.outsourcing import Strategy
from repro.storage.thp import run_thp_study


def test_fig12_thp_latency(benchmark):
    config = FleetConfig(n_blockservers=8, encode_base_per_second=2.5,
                         burst_mean=2.0, strategy=Strategy.CONTROL, seed=19)
    study = benchmark.pedantic(
        lambda: run_thp_study(hours_before=2 * SCALE, hours_after=2 * SCALE,
                              stall_seconds=1.5, base_config=config),
        rounds=1, iterations=1,
    )
    rows = [
        [hour, "on" if hour < study.disable_hour else "off",
         pct[50], pct[75], pct[95], pct[99]]
        for hour, pct in study.hourly
    ]
    from repro.analysis.charts import multi_series

    table = format_table(
        ["hour", "THP", "p50(s)", "p75(s)", "p95(s)", "p99(s)"],
        rows,
        title="Figure 12 — hourly decode percentiles, THP disabled mid-run "
              "(paper: p99 steps down at 03:00; tail hit ≫ median)",
    )
    chart = multi_series(
        ["p50", "p99"],
        [study.percentile_series(50), study.percentile_series(99)],
        title="hourly latency, THP flipped off mid-series:",
    )
    emit("fig12_thp", table + "\n\n" + chart)
    before_p99 = max(study.percentile_series(99)[: int(study.disable_hour)])
    after_p99 = max(study.percentile_series(99)[int(study.disable_hour):])
    assert after_p99 < before_p99
    assert study.tail_to_median_ratio(True) > 1.5 * study.tail_to_median_ratio(False)
