"""Figure 8: compression speed vs file size, per thread count.

Paper: encode speed also rises with threads, "but it is almost unaffected
by the benefit of moving to 8 threads from 4 ... because at 4 threads the
bottleneck shifts to the JPEG Huffman decoder" — which the Lepton encoder
must run serially (the decoder escapes this via handover words).  We
measure the effective wall clock from ``encode_jpeg_timed``, whose serial
head is exactly that Huffman decode + verification pass.

``encode_jpeg_timed`` reads its stage timings from the ``EncodeSession``
obs spans (parse / scan_decode / verify_index serially, the max over
``code_segment`` spans in parallel), so the timed and untimed encoders
are one pipeline with one policy — the payloads are byte-identical.
"""

from _harness import emit
from repro.analysis.stats import mbits_per_second
from repro.analysis.tables import format_table
from repro.core.encoder import encode_jpeg_timed
from repro.corpus.builder import corpus_jpeg

SIZES = [96, 160, 256]
THREADS = [1, 2, 4, 8]


def _speed(px: int, threads: int):
    data = corpus_jpeg(seed=8000, height=px, width=px, quality=88)
    # Min of two runs: single timings are noisy under full-suite load.
    effective = min(
        encode_jpeg_timed(data, threads=threads)[1] for _ in range(2)
    )
    return len(data), mbits_per_second(len(data), effective)


def test_fig8_encode_speed_by_threads(benchmark):
    def run():
        return {(px, t): _speed(px, t) for px in SIZES for t in THREADS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [px, t, results[(px, t)][0], results[(px, t)][1]]
        for px in SIZES for t in THREADS
    ]
    emit("fig8_encode_threads", format_table(
        ["image px", "threads", "file size (B)", "effective enc (Mbps)"],
        rows,
        title="Figure 8 — encode speed vs size per thread count "
              "(paper: 4→8 threads plateaus; serial Huffman decode "
              "bottleneck)",
        float_format="{:.3f}",
    ))
    largest = SIZES[-1]
    speeds = {t: results[(largest, t)][1] for t in THREADS}
    # Threads help at first...
    assert speeds[2] > speeds[1] * 1.1
    # ...but the serial Huffman-decode head bounds total speedup well below
    # linear, and 4→8 gains far less than doubling (the Figure-8 plateau).
    assert speeds[8] / speeds[1] < 6.0
    gain_4_to_8 = speeds[8] / speeds[4]
    assert gain_4_to_8 < 1.6
    # The later doubling cannot meaningfully out-gain the earlier one
    # (1.25x margin absorbs timing noise).
    gain_2_to_4 = speeds[4] / speeds[2]
    assert gain_4_to_8 < gain_2_to_4 * 1.25
