"""§5.6.1 cost-effectiveness table.

Paper numbers: one kWh ↦ ~72,300 conversions of ~1.5 MB images ↦ ~24 GiB
saved permanently; break-even electricity price vs a depowered $120 5-TB
drive ≈ $0.58/kWh; each Xeon backfills 5.75 images/s ⇒ ~181.5M images/year
⇒ ~58.8 TiB saved per server-year (≈$9,031/yr at S3-IA pricing).
"""

import pytest

from _harness import emit
from repro.analysis.tables import format_table
from repro.storage.power import (
    BACKFILL_MACHINES,
    CONVERSIONS_PER_SECOND,
    MEAN_IMAGE_BYTES,
    SAVINGS_FRACTION,
    PowerModel,
)

S3_IA_DOLLARS_PER_GIB_YEAR = 3.60 / 24.0  # $3.60/yr for 24 GiB (paper)
SECONDS_PER_YEAR = 365.25 * 86400


def test_cost_effectiveness_table(benchmark):
    model = benchmark.pedantic(PowerModel, rounds=1, iterations=1)
    conversions_per_kwh = model.conversions_per_kwh()
    gib_per_kwh = model.gib_saved_per_kwh()
    breakeven = model.breakeven_kwh_price()
    per_server_rate = CONVERSIONS_PER_SECOND / BACKFILL_MACHINES
    images_per_year = per_server_rate * SECONDS_PER_YEAR
    tib_saved_per_server_year = (
        images_per_year * MEAN_IMAGE_BYTES * SAVINGS_FRACTION / (1024.0**4)
    )
    s3_value = tib_saved_per_server_year * 1024 * S3_IA_DOLLARS_PER_GIB_YEAR

    emit("cost_effectiveness", format_table(
        ["metric", "measured", "paper"],
        [
            ["conversions per kWh", conversions_per_kwh, 72_300],
            ["GiB saved per kWh", gib_per_kwh, 24.0],
            ["break-even $/kWh vs dark drive", breakeven, 0.58],
            ["images per server-second", per_server_rate, 5.75],
            ["images per server-year (M)", images_per_year / 1e6, 181.5],
            ["TiB saved per server-year", tib_saved_per_server_year, 58.8],
            ["S3-IA value per server-year ($)", s3_value, 9_031],
        ],
        title="§5.6.1 — cost effectiveness",
        float_format="{:.2f}",
    ))
    assert conversions_per_kwh == pytest.approx(72_300, rel=0.01)
    assert gib_per_kwh == pytest.approx(24.0, rel=0.05)
    assert breakeven == pytest.approx(0.58, abs=0.03)
    assert per_server_rate == pytest.approx(5.79, abs=0.1)
    assert tib_saved_per_server_year == pytest.approx(58.8, rel=0.08)
