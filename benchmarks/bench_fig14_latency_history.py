"""Figure 14: decode latency percentiles over the months after roll-out.

Paper (Apr–Aug 2016): as the decode:encode ratio ramped (Figure 13) on a
fleet provisioned for the early, low ratio, peak p99 decode latency climbed
into the multi-second range — until the outsourcing system (§5.5) shipped
and brought it back down.  We replay that history: a fleet sim per "month"
with the ramping decode rate, control strategy throughout, then dedicated
outsourcing in the final period.
"""

from _harness import SCALE, emit
from repro.analysis.tables import format_table
from repro.storage.fleet import FleetConfig, FleetSim
from repro.storage.outsourcing import Strategy

#: (label, decode:encode ratio, outsourcing on?)
PERIODS = [
    ("Apr", 0.2, False),
    ("May", 0.7, False),
    ("Jun", 1.2, False),
    ("Jul", 1.8, False),
    ("Aug", 1.8, True),  # outsourcing ships
]


def _run(ratio, outsourced):
    config = FleetConfig(
        duration_hours=0.75 * SCALE,
        strategy=Strategy.TO_DEDICATED if outsourced else Strategy.CONTROL,
        threshold=3,
        decode_to_encode=ratio,
        burst_mean=8.0,
        seed=23,
    )
    return FleetSim(config).run().latency_percentiles("lepton_decode")


def test_fig14_latency_history(benchmark):
    history = benchmark.pedantic(
        lambda: [(label, _run(ratio, out)) for label, ratio, out in PERIODS],
        rounds=1, iterations=1,
    )
    rows = [
        [label, pct[50], pct[75], pct[95], pct[99]]
        for label, pct in history
    ]
    from repro.analysis.charts import multi_series

    table = format_table(
        ["period", "p50(s)", "p75(s)", "p95(s)", "p99(s)"],
        rows,
        title="Figure 14 — decode latency percentiles over the rollout "
              "(paper: p99 climbs to seconds, drops when outsourcing ships)",
    )
    chart = multi_series(
        ["p50", "p99"],
        [[pct[50] for _, pct in history], [pct[99] for _, pct in history]],
        title="Apr..Aug (outsourcing ships in Aug):",
    )
    emit("fig14_history", table + "\n\n" + chart)
    p99 = {label: pct[99] for label, pct in history}
    # The tail degrades as the decode load ramps...
    assert p99["Jul"] > p99["Apr"]
    # ...and recovers when outsourcing ships at the same load.
    assert p99["Aug"] < p99["Jul"]
