"""The §5.7 disaster-recovery drill, replayed.

"Before enabling Lepton, the team did a mock disaster recovery training
(DRT) session where a file in a test account was intentionally corrupted
and recovered from the safety net."  This example runs the whole drill:
upload with the safety net double-write, corrupt the stored payload,
watch the integrity check catch it, recover from the net, and page the
on-call through the alert pipeline.

Run:  python examples/disaster_recovery.py
"""

from repro.core.lepton import LeptonConfig
from repro.corpus.builder import corpus_jpeg
from repro.storage.blockstore import BlockStore, IntegrityError
from repro.storage.safety import AlertPipeline, SafetyNet


def main() -> None:
    store = BlockStore(chunk_size=1 << 20, config=LeptonConfig(threads=2))
    net = SafetyNet()
    pipeline = AlertPipeline()

    # 1. A test-account upload, double-written to the safety net (§5.7).
    original = corpus_jpeg(seed=404, height=128, width=128, quality=88)
    record = store.put_file("test-account/drt.jpg", original)
    net.put("test-account/drt.jpg", original)
    print(f"uploaded {len(original)} bytes as {len(record.chunk_keys)} chunk(s), "
          "safety-net copy written")

    # 2. Intentional corruption of the stored Lepton payload.
    key = record.chunk_keys[0]
    entry = store.entries[key]
    damaged = bytearray(entry.chunk.payload)
    damaged[len(damaged) // 2] ^= 0xFF
    entry.chunk.payload = bytes(damaged)
    print("stored payload intentionally corrupted")

    # 3. A download trips the integrity check — loudly, not silently.
    try:
        store.get_chunk(key)
        raise AssertionError("corruption must not decode cleanly")
    except IntegrityError as exc:
        print(f"integrity check fired: {exc}")
        pipeline.page("integrity_failure", str(exc))

    # 4. Recovery from the safety net, then re-admission.
    recovered = net.recover("test-account/drt.jpg")
    assert recovered == original
    store.entries.pop(key)
    store.put_file("test-account/drt.jpg", recovered)
    assert store.get_file("test-account/drt.jpg") == original
    print("recovered from the safety net and re-admitted — drill passed ✓")
    print(f"on-call pages during the drill: {len(pipeline.pages)}")
    print('\n(§6.5\'s irony applies: in production "a system we designed as '
          "a belt-and-suspenders safety net ended up causing our users "
          'trouble, but has never helped to resolve an actual problem")')


if __name__ == "__main__":
    main()
