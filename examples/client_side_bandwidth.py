"""Client-side Lepton: the paper's §7 future work, simulated end to end.

"In the future, we intend to move the compression and decompression to
client software, which will save 23% in network bandwidth when uploading
or downloading JPEG images."  This example runs both deployment shapes over
the same photo batch and compares bytes on the wire.

Run:  python examples/client_side_bandwidth.py
"""

from repro.core.lepton import LeptonConfig, compress, decompress
from repro.corpus.builder import jpeg_sweep


def main() -> None:
    photos = jpeg_sweep(6, seed=2024, sizes=(96, 128, 160))
    config = LeptonConfig(threads=2)

    # --- today: server-side transparent compression (§3) -----------------
    upload_wire = download_wire = stored = 0
    for photo in photos:
        upload_wire += len(photo.data)  # client sends the raw JPEG
        result = compress(photo.data, config)
        assert result.ok
        stored += result.output_size
        served = decompress(result.payload)  # server decodes before serving
        assert served == photo.data
        download_wire += len(served)

    # --- future: client-side codec (§7) -------------------------------
    c_upload = c_download = 0
    for photo in photos:
        result = compress(photo.data, config)  # client compresses locally
        assert result.ok
        c_upload += result.output_size  # the wire carries Lepton bytes
        c_download += result.output_size
        assert decompress(result.payload) == photo.data  # client decodes

    total = sum(len(p.data) for p in photos)
    print(f"batch: {len(photos)} photos, {total} bytes of JPEG")
    print(f"stored either way:      {stored} bytes "
          f"({100 * (1 - stored / total):.1f}% storage savings)")
    print("\n                     upload wire   download wire")
    print(f"server-side (today)  {upload_wire:12d}  {download_wire:14d}")
    print(f"client-side (§7)     {c_upload:12d}  {c_download:14d}")
    saved = 100 * (1 - c_upload / upload_wire)
    print(f"\nclient-side saves {saved:.1f}% of network bandwidth in each "
          "direction — the paper's projected ≈23%")


if __name__ == "__main__":
    main()
