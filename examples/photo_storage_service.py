"""A miniature Dropbox-style photo store, end to end.

Files are split into chunks, each chunk independently Lepton-compressed,
round-trip-verified before admission (§5.7), stored content-addressed, and
served back byte-exactly — including the non-JPEG files that fall back to
Deflate, and the kill switch the on-call engineer can throw.

Run:  python examples/photo_storage_service.py
"""

import tempfile

from repro.core.lepton import LeptonConfig
from repro.corpus.builder import corpus_jpeg
from repro.corpus.corruptions import make_progressive
from repro.storage.blockstore import BlockStore
from repro.storage.safety import SafetyNet, ShutoffSwitch


def main() -> None:
    store = BlockStore(chunk_size=2048, config=LeptonConfig(threads=2))
    safety_net = SafetyNet(capacity_puts_per_tick=100)
    switch = ShutoffSwitch(tempfile.mkdtemp())

    uploads = {
        "vacation/beach.jpg": corpus_jpeg(seed=1, height=160, width=200),
        "vacation/sunset.jpg": corpus_jpeg(seed=2, height=128, width=128),
        "phone/IMG_0001.jpg": corpus_jpeg(seed=3, height=192, width=144,
                                          restart_interval=4),
        "docs/report.pdf": b"%PDF-1.4 pretend document " * 120,
        "weird/progressive.jpg": make_progressive(
            corpus_jpeg(seed=4, height=96, width=96)
        ),
    }

    print("=== uploads ===")
    for name, data in uploads.items():
        if switch.engaged:
            print(f"  {name}: lepton disabled by shutoff switch")
            continue
        record = store.put_file(name, data)
        safety_net.put(name, data)  # the early-rollout belt-and-suspenders
        print(f"  {name}: {len(data)} bytes in {len(record.chunk_keys)} chunk(s)")

    print("\n=== storage accounting ===")
    print(f"  chunks admitted:       {store.admissions}")
    print(f"  bytes through lepton:  {store.lepton_bytes_in}")
    print(f"  lepton savings:        {100 * store.savings_fraction:.1f}%")
    print(f"  total stored:          {store.stored_bytes} bytes")

    print("\n=== downloads (byte-exact) ===")
    for name, data in uploads.items():
        served = store.get_file(name)
        assert served == data, name
        print(f"  {name}: ✓ {len(served)} bytes")

    # §5.7: the safety net was eventually deleted...
    dropped = safety_net.delete_all()
    print(f"\nsafety net deleted ({dropped} objects) — §5.7")

    # ...and the kill switch stays ready (30-second propagation, §6.5).
    switch.engage()
    print(f"shutoff switch engaged: {switch.engaged} (path: {switch.path})")


if __name__ == "__main__":
    main()
