"""Backfilling old photos with spare capacity (§5.6).

DropSpot allocates idle machines (2–4 h imaging), metaservers scan the
sharded user table for ".jp" files and hash their 4-MiB chunks, and workers
download/compress/triple-check/upload each chunk.  The run prints the
§6.2-style exit-code table, the achieved savings, and the §5.6.1 power
economics.

Run:  python examples/backfill_fleet.py
"""

from repro.core.lepton import LeptonConfig
from repro.corpus.builder import build_corpus
from repro.storage.backfill import BackfillWorker, DropSpot, Metaserver, UserFile
from repro.storage.power import PowerModel
from repro.storage.simclock import SimClock


def main() -> None:
    # A small user population with photo-like filenames (plus decoys the
    # metaserver's ".jp" filter must skip).
    corpus = build_corpus(n_jpegs=10, seed=77)
    users = {}
    for i, item in enumerate(corpus):
        users.setdefault(i % 4, []).append(UserFile(f"{item.name}.jpg", item.data))
    users[0].append(UserFile("notes.txt", b"not a photo"))

    # DropSpot: spare machines get imaged for Lepton duty.
    clock = SimClock()
    spot = DropSpot(clock, free_machines=28, allocate_above=20)
    spot.poll()
    clock.run_all()
    print(f"DropSpot: {spot.active} machines active after imaging "
          f"({clock.now / 3600:.1f} h)")

    # Metaserver scan + workers.
    meta = Metaserver(users, n_shards=2, chunk_size=4 * 1024 * 1024)
    store = {}
    total_stats = []
    for shard in range(2):
        worker = BackfillWorker(meta, store.__setitem__, LeptonConfig(threads=1))
        worker.process_shard(shard)
        total_stats.append(worker.stats)

    chunks = sum(s.chunks_processed for s in total_stats)
    bytes_in = sum(s.bytes_in for s in total_stats)
    bytes_out = sum(s.bytes_out for s in total_stats)
    print(f"\nbackfill: {chunks} chunks, {bytes_in} -> {bytes_out} bytes "
          f"({100 * (1 - bytes_out / max(bytes_in, 1)):.1f}% saved)")

    print("\nexit codes (§6.2):")
    merged = {}
    for stats in total_stats:
        for code, count in stats.exit_codes.items():
            merged[code] = merged.get(code, 0) + count
    for code, count in sorted(merged.items(), key=lambda kv: -kv[1]):
        print(f"  {code.value:24s} {count:4d}  ({100 * count / chunks:.1f}%)")

    # §5.6.1 economics at production scale.
    model = PowerModel()
    print("\ncost effectiveness (§5.6.1):")
    print(f"  conversions per kWh:  {model.conversions_per_kwh():,.0f}")
    print(f"  GiB saved per kWh:    {model.gib_saved_per_kwh():.1f}")
    print(f"  break-even $/kWh:     {model.breakeven_kwh_price():.2f}")


if __name__ == "__main__":
    main()
