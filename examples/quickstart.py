"""Quickstart: losslessly recompress a JPEG and get the exact bytes back.

Run:  python examples/quickstart.py
"""

from repro import compress, decompress
from repro.core.lepton import LeptonConfig
from repro.corpus.images import synthetic_photo
from repro.jpeg.writer import encode_baseline_jpeg


def main() -> None:
    # The paper ran on user uploads; offline we synthesise a photo-like
    # image and encode it as a baseline JPEG with our own writer.
    pixels = synthetic_photo(160, 160, seed=42)
    jpeg_bytes = encode_baseline_jpeg(pixels, quality=88, subsampling="4:2:0")
    print(f"input JPEG:      {len(jpeg_bytes):6d} bytes")

    # Compress.  The result carries the §6.2 exit code, the payload, and
    # per-component statistics.
    result = compress(jpeg_bytes, LeptonConfig(threads=2))
    assert result.ok, result.exit_code
    print(f"lepton payload:  {result.output_size:6d} bytes "
          f"({100 * result.savings_fraction:.1f}% saved, "
          f"{result.stats.thread_count} thread segments)")

    # Decompress — byte-exact, always.
    recovered = decompress(result.payload)
    assert recovered == jpeg_bytes
    print("round trip:      exact ✓")

    # Where did the bits go?  (The Figure-4 breakdown.)
    costs = result.stats.bit_costs
    total = sum(costs.values())
    for category in ("7x7", "edge", "dc", "nnz"):
        print(f"  {category:5s} {100 * costs[category] / total:5.1f}% of coded bits")


if __name__ == "__main__":
    main()
