"""A miniature Figure-2: every codec on the same corpus.

Run:  python examples/codec_shootout.py
"""

import time

from repro.analysis.tables import format_table
from repro.baselines.registry import all_codecs
from repro.corpus.builder import jpeg_sweep


def main() -> None:
    corpus = jpeg_sweep(4, seed=123, sizes=(96, 128))
    rows = []
    for codec in all_codecs():
        bytes_in = bytes_out = 0
        enc = dec = 0.0
        for item in corpus:
            bytes_in += len(item.data)
            t0 = time.perf_counter()
            payload = codec.compress(item.data)
            enc += time.perf_counter() - t0
            t1 = time.perf_counter()
            out = codec.decompress(payload)
            dec += time.perf_counter() - t1
            assert out == item.data
            bytes_out += len(payload)
        rows.append([
            codec.name,
            100.0 * (1 - bytes_out / bytes_in),
            enc, dec,
            codec.substitution_note or "-",
        ])
    print(format_table(
        ["codec", "savings(%)", "enc(s)", "dec(s)", "note"],
        rows,
        title="Codec shootout (paper Figure 2, miniature)",
        float_format="{:.2f}",
    ))


if __name__ == "__main__":
    main()
