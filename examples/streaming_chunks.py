"""Independent chunks and streaming decode — the distribution story (§3.4).

A JPEG is split at fixed byte boundaries (4 MiB in production, small here);
every chunk is compressed into a self-contained Lepton container carrying a
Huffman handover word, so any server can decode any chunk — even one whose
boundary falls mid-symbol — without seeing the rest of the file.  Decoding
also *streams*: the header bytes are available before any arithmetic
decoding has run (time-to-first-byte).

Run:  python examples/streaming_chunks.py
"""

import time

from repro.core.chunks import compress_chunked, decompress_chunk
from repro.core.lepton import LeptonConfig, compress, decompress_stream
from repro.corpus.builder import corpus_jpeg


def main() -> None:
    jpeg = corpus_jpeg(seed=9, height=192, width=224, quality=88,
                       restart_interval=6)
    print(f"file: {len(jpeg)} bytes")

    # --- chunk independence ------------------------------------------
    chunk_size = 1500
    chunks = compress_chunked(jpeg, chunk_size, LeptonConfig(threads=2))
    print(f"\nsplit into {len(chunks)} chunks of ≤{chunk_size} bytes:")
    # Decode them out of order, each standalone, and reassemble.
    pieces = {}
    for chunk in reversed(chunks):
        data = decompress_chunk(chunk)
        a, b = chunk.original_range
        assert data == jpeg[a:b]
        pieces[chunk.index] = data
        print(f"  chunk {chunk.index}: bytes [{a}, {b}) decoded independently ✓")
    assert b"".join(pieces[i] for i in sorted(pieces)) == jpeg
    print("reassembled: exact ✓")

    # --- streaming: time-to-first-byte ----------------------------------
    payload = compress(jpeg, LeptonConfig(threads=4)).payload
    start = time.perf_counter()
    stream = decompress_stream(payload)
    first = next(stream)
    ttfb = time.perf_counter() - start
    rest = b"".join(stream)
    ttlb = time.perf_counter() - start
    assert first + rest == jpeg
    print(f"\nstreaming decode: first {len(first)} bytes after "
          f"{1000 * ttfb:.2f} ms; all {len(jpeg)} bytes after "
          f"{1000 * ttlb:.2f} ms")
    print("the header streams out before any coefficient is decoded — "
          "that is what fills the user's connection early (§3.4)")


if __name__ == "__main__":
    main()
